"""Transport layer: envelopes, codecs, accounting, and the fork backend."""

import pytest

from repro.constants import SUBMISSION_OVERHEAD
from repro.coordinator.network import Deployment, DeploymentConfig
from repro.crypto.nizk import prove_dlog
from repro.engine.multiprocess import MultiprocessBackend
from repro.errors import ConfigurationError, DecodingError
from repro.mixnet.ahs import ChainRoundResult
from repro.mixnet.messages import BatchEntry, ClientSubmission, MailboxMessage, MessageBody
from repro.simulation.costmodel import CostModel
from repro.transport import (
    BATCH,
    MAILBOX_DELIVERY,
    MAILBOX_FETCH,
    SUBMISSION,
    Envelope,
    InProcTransport,
    InstrumentedTransport,
    LinkRecord,
    TrafficLedger,
    make_transport,
)
from repro.transport.codec import (
    decode_chain_outcome,
    decode_payload,
    encode_chain_outcome,
    encode_payload,
)

RECIPIENT = b"\x09" * 32
KEY = b"\x05" * 32


def make_submission(group, chain_id=1, sender="alice", ciphertext=b"c" * 64):
    secret = group.random_scalar()
    proof = prove_dlog(group, group.base(), secret)
    return ClientSubmission(
        chain_id=chain_id,
        sender=sender,
        dh_public=group.encode(group.base_mult(secret)),
        ciphertext=ciphertext,
        proof=proof,
    )


def envelope(kind, payload, **kwargs):
    defaults = dict(source="src", destination="dst", round_number=1)
    defaults.update(kwargs)
    return Envelope(kind=kind, payload=payload, **defaults)


class TestCodecRoundTrips:
    def test_submission_payload(self, group):
        submission = make_submission(group)
        wire = encode_payload(group, envelope(SUBMISSION, submission))
        assert len(wire) == submission.wire_size()
        decoded = decode_payload(group, SUBMISSION, wire)
        assert decoded == submission

    def test_batch_payload(self, group):
        entries = [
            BatchEntry(dh_public=group.base_mult(index + 1), ciphertext=bytes([index]) * index)
            for index in range(4)
        ]
        wire = encode_payload(group, envelope(BATCH, entries, chain_id=0))
        decoded = decode_payload(group, BATCH, wire)
        assert decoded == entries

    def test_mailbox_payloads(self, group):
        messages = [
            MailboxMessage.seal(RECIPIENT, KEY, 3, MessageBody.data(b"m%d" % index))
            for index in range(3)
        ]
        for kind in (MAILBOX_DELIVERY, MAILBOX_FETCH):
            wire = encode_payload(group, envelope(kind, messages))
            assert decode_payload(group, kind, wire) == messages

    def test_empty_batches(self, group):
        assert decode_payload(group, BATCH, encode_payload(group, envelope(BATCH, []))) == []
        assert (
            decode_payload(
                group, MAILBOX_FETCH, encode_payload(group, envelope(MAILBOX_FETCH, []))
            )
            == []
        )

    def test_trailing_bytes_rejected(self, group):
        wire = encode_payload(group, envelope(BATCH, [BatchEntry(group.base_mult(2), b"ct")]))
        with pytest.raises(DecodingError):
            decode_payload(group, BATCH, wire + b"\x00")

    def test_chain_outcome_round_trip(self):
        result = ChainRoundResult(
            chain_id=3,
            round_number=9,
            status=ChainRoundResult.STATUS_DELIVERED,
            mailbox_messages=[MailboxMessage.seal(RECIPIENT, KEY, 9, MessageBody.loopback())],
            rejected_senders=["mallory"],
            invalid_inner_count=2,
            input_digest=b"\xaa" * 32,
        )
        wire = encode_chain_outcome(3, ["eve"], result)
        chain_id, accept_rejected, decoded = decode_chain_outcome(wire)
        assert chain_id == 3
        assert accept_rejected == ["eve"]
        assert decoded == result

    def test_chain_outcome_none_vs_empty_strings(self):
        result = ChainRoundResult(
            chain_id=0,
            round_number=1,
            status=ChainRoundResult.STATUS_HALTED_SERVER,
            misbehaving_server="",
            input_digest=b"",
        )
        _, _, decoded = decode_chain_outcome(encode_chain_outcome(0, [], result))
        assert decoded.misbehaving_server == ""
        result_none = ChainRoundResult(
            chain_id=0, round_number=1, status=ChainRoundResult.STATUS_DELIVERED
        )
        _, _, decoded = decode_chain_outcome(encode_chain_outcome(0, [], result_none))
        assert decoded.misbehaving_server is None


class TestTransports:
    def test_inproc_is_identity(self):
        transport = InProcTransport()
        payload = object()
        assert transport.deliver(envelope(SUBMISSION, payload)) is payload

    def test_instrumented_records_wire_bytes(self, group):
        transport = InstrumentedTransport(group, cost_model=CostModel.paper_testbed())
        submission = make_submission(group)
        delivered = transport.deliver(
            envelope(SUBMISSION, submission, source="alice", destination="server-0", chain_id=1)
        )
        assert delivered == submission
        assert delivered is not submission
        [record] = transport.ledger.records
        assert record.num_bytes == submission.wire_size()
        assert record.seconds == transport.cost_model.link_time(record.num_bytes)
        assert (record.source, record.destination, record.chain_id) == ("alice", "server-0", 1)

    def test_make_transport(self, group):
        assert make_transport("inproc").name == "inproc"
        assert make_transport("instrumented", group=group).name == "instrumented"
        with pytest.raises(ConfigurationError):
            make_transport("instrumented")
        with pytest.raises(ConfigurationError):
            make_transport("carrier-pigeon")


class TestTrafficLedger:
    @staticmethod
    def record(round_number=1, kind=SUBMISSION, source="u", destination="s",
               num_bytes=100, seconds=0.1, chain_id=None):
        return LinkRecord(round_number, kind, source, destination, num_bytes, seconds, chain_id)

    def test_totals_and_filters(self):
        ledger = TrafficLedger()
        ledger.append(self.record(num_bytes=10))
        ledger.append(self.record(round_number=2, num_bytes=20))
        ledger.append(self.record(kind=MAILBOX_FETCH, num_bytes=5))
        assert ledger.total_bytes() == 35
        assert ledger.total_bytes(round_number=1) == 15
        assert ledger.total_bytes(kinds=[SUBMISSION]) == 30
        assert ledger.bytes_by_kind(1) == {SUBMISSION: 10, MAILBOX_FETCH: 5}

    def test_per_user_bytes(self):
        ledger = TrafficLedger()
        ledger.append(self.record(source="alice", num_bytes=100))
        ledger.append(self.record(source="alice", num_bytes=50))
        ledger.append(self.record(kind=MAILBOX_FETCH, destination="alice", num_bytes=30))
        ledger.append(self.record(kind=MAILBOX_FETCH, destination="bob", num_bytes=40))
        assert ledger.per_user_bytes(1) == {"alice": (150, 30), "bob": (0, 40)}

    def test_round_latency_critical_path(self):
        ledger = TrafficLedger()
        ledger.append(self.record(seconds=0.2))
        ledger.append(self.record(seconds=0.1))
        ledger.append(self.record(kind=BATCH, chain_id=0, seconds=0.3))
        ledger.append(self.record(kind=BATCH, chain_id=0, seconds=0.3))
        ledger.append(self.record(kind=BATCH, chain_id=1, seconds=0.5))
        ledger.append(self.record(kind=MAILBOX_DELIVERY, chain_id=1, seconds=0.2))
        ledger.append(self.record(kind=MAILBOX_FETCH, seconds=0.4))
        # slowest upload (0.2) + slowest chain (0.5 + 0.2 delivery) + fetch (0.4)
        assert ledger.round_latency_seconds(1) == pytest.approx(1.3)
        assert ledger.chain_hop_seconds(1) == {0: pytest.approx(0.6), 1: pytest.approx(0.5)}

    def test_record_tuple_round_trip(self):
        record = self.record(chain_id=4)
        assert LinkRecord.from_tuple(record.to_tuple()) == record


class TestMultiprocessBackend:
    def test_generic_map_preserves_order(self):
        backend = MultiprocessBackend(max_workers=3)
        assert backend.map_chains(lambda v: v * v, list(range(10))) == [
            v * v for v in range(10)
        ]
        backend.close()

    def test_single_chain_runs_inline(self):
        backend = MultiprocessBackend(max_workers=4)
        assert backend.map_chains(lambda v: v + 1, [41]) == [42]

    def test_first_exception_propagates(self):
        backend = MultiprocessBackend(max_workers=2)

        def boom(value):
            if value >= 2:
                raise RuntimeError("chain %d exploded" % value)
            return value

        with pytest.raises(RuntimeError, match="chain 2 exploded"):
            backend.map_chains(boom, [0, 1, 2, 3])

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiprocessBackend(max_workers=0)

    def test_chain_outcomes_cross_as_wire_bytes(self):
        """A real mix round's outcomes survive the fork-and-encode trip."""
        deployment = Deployment.create(
            DeploymentConfig(
                num_servers=4,
                num_users=4,
                num_chains=2,
                chain_length=2,
                seed=5,
                group_kind="modp",
                execution_backend="multiprocess",
                max_workers=2,
            )
        )
        report = deployment.run_round()
        assert report.all_chains_delivered()
        assert report.total_submissions == 4 * deployment.ell()
        deployment.close()


class TestDeploymentWiring:
    def test_chains_share_the_deployment_transport(self):
        deployment = Deployment.create(
            DeploymentConfig(
                num_servers=3, num_users=2, num_chains=2, chain_length=2,
                seed=1, group_kind="modp", transport="instrumented",
            )
        )
        assert all(chain.transport is deployment.transport for chain in deployment.chains)
        assert deployment.traffic_ledger is deployment.transport.ledger
        deployment.run_round()
        kinds = set(deployment.traffic_ledger.bytes_by_kind(1))
        assert {SUBMISSION, BATCH, MAILBOX_DELIVERY, MAILBOX_FETCH} <= kinds
        deployment.close()

    def test_use_transport_rewires_chains(self):
        deployment = Deployment.create(
            DeploymentConfig(
                num_servers=3, num_users=2, num_chains=2, chain_length=2,
                seed=1, group_kind="modp",
            )
        )
        replacement = InstrumentedTransport(deployment.group)
        deployment.use_transport(replacement)
        assert deployment.transport is replacement
        assert all(chain.transport is replacement for chain in deployment.chains)
        deployment.run_round()
        assert replacement.ledger.total_bytes() > 0
        deployment.close()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            DeploymentConfig(transport="udp").validate()

    def test_entry_servers_are_chain_heads(self):
        deployment = Deployment.create(
            DeploymentConfig(
                num_servers=4, num_users=2, num_chains=3, chain_length=2,
                seed=3, group_kind="modp",
            )
        )
        for topology in deployment.topologies:
            assert deployment.entry_servers[topology.chain_id] == topology.servers[0]


class TestWireOverheadConstant:
    def test_submission_wire_size_is_overhead_plus_onion(self, group):
        from repro.crypto.onion import onion_size

        deployment = Deployment.create(
            DeploymentConfig(
                num_servers=3, num_users=2, num_chains=2, chain_length=3,
                seed=2, group_kind="modp",
            )
        )
        report = deployment.run_round()
        assert report.total_submissions > 0
        chain = deployment.chains[0]
        for submission in chain.submissions_for_round(1):
            assert submission.wire_size() == SUBMISSION_OVERHEAD + onion_size(3)
