"""Engine parity: every transport/backend/scheduler combination is bit-identical.

The acceptance property of the engine and transport refactors: with a fixed
deployment seed, every cell of the matrix

    {InProcTransport, InstrumentedTransport}
        × {SerialBackend, ParallelBackend, MultiprocessBackend}
        × {sequential, staggered}

delivers byte-identical :class:`RoundReport` payloads across multi-round
conversations, including offline/cover rounds and adversarial extra
submissions.  ``RoundReport.canonical_bytes`` hashes everything observable
about a round (delivered messages, mailbox counts, per-chain statuses and
mailbox message bytes, rejections, cover plays), so equality here means the
execution strategy *and* the transport are unobservable.  For the
instrumented transport the property is stronger still: every delivered
payload was re-decoded from its wire bytes, so parity proves the codecs of
:mod:`repro.transport.codec` lossless.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordinator.network import Deployment, DeploymentConfig
from repro.engine import (
    ParallelBackend,
    RoundEngine,
    SerialBackend,
    StaggeredScheduler,
    make_backend,
)
from repro.errors import ConfigurationError

from tests.test_ahs_protocol import make_submission

BACKENDS = ("serial", "parallel", "multiprocess")
TRANSPORTS = ("inproc", "instrumented")

_PROPERTY_GROUP = None


def _property_group():
    """One shared ModP group for the hypothesis parity properties (its safe
    prime search is the expensive part, not the arithmetic)."""
    global _PROPERTY_GROUP
    if _PROPERTY_GROUP is None:
        from repro.crypto.group import ModPGroup

        _PROPERTY_GROUP = ModPGroup()
    return _PROPERTY_GROUP


def build(backend="serial", seed=42, transport="inproc", population="object", **kwargs):
    # Pin the worker count so the multiprocess cells really fork (and
    # wire-encode their results) even on single-core CI runners, where the
    # cpu-count default would fall back to inline execution.
    kwargs.setdefault("max_workers", 2)
    config = DeploymentConfig(
        num_servers=4,
        num_users=6,
        num_chains=3,
        chain_length=2,
        seed=seed,
        group_kind="modp",
        execution_backend=backend,
        transport=transport,
        population=population,
        **kwargs,
    )
    return Deployment.create(config)


def conversation_script(deployment):
    """A six-round script exercising payloads, idle rounds, and churn."""
    a, b = deployment.users[0].name, deployment.users[1].name
    c, d = deployment.users[2].name, deployment.users[3].name
    deployment.start_conversation(a, b)
    deployment.start_conversation(c, d)
    return [
        deployment.round_spec(payloads={a: b"r1-a", b: b"r1-b", c: b"r1-c"}),
        # b vanishes: her banked cover is played and a receives the offline
        # notice in this round's fetch — the data dependency the staggered
        # scheduler must honour.
        deployment.round_spec(payloads={a: b"r2-a"}, offline_users={b}),
        deployment.round_spec(payloads={c: b"r3-c", d: b"r3-d"}),
        deployment.round_spec(offline_users={d}),
        deployment.round_spec(payloads={a: b"r5-a"}),
        deployment.round_spec(),
    ]


def fingerprints(reports):
    return [report.canonical_bytes() for report in reports]


class TestTransportBackendMatrix:
    """The full transports × backends parity matrix on the six-round script."""

    @pytest.fixture(scope="class")
    def reference(self):
        deployment = build("serial", transport="inproc")
        return fingerprints(deployment.run_rounds(conversation_script(deployment)))

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matrix_cell_matches_reference(self, reference, transport, backend):
        deployment = build(backend, transport=transport)
        actual = fingerprints(deployment.run_rounds(conversation_script(deployment)))
        deployment.close()
        assert actual == reference

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matrix_cell_matches_reference_staggered(self, reference, transport, backend):
        deployment = build(backend, transport=transport)
        actual = fingerprints(
            deployment.run_rounds(conversation_script(deployment), staggered=True)
        )
        deployment.close()
        assert actual == reference

    def test_instrumented_ledgers_agree_across_backends(self):
        """Per-round byte totals are backend-independent, worker-merged or not."""
        totals = []
        for backend in BACKENDS:
            deployment = build(backend, transport="instrumented")
            deployment.run_rounds(conversation_script(deployment))
            ledger = deployment.traffic_ledger
            totals.append([ledger.bytes_by_kind(r) for r in range(1, 7)])
            deployment.close()
        assert totals[0] == totals[1] == totals[2]


class TestPopulationParity:
    """The batched population path is bit-identical to the per-user path
    across the full {backend} × {transport} × {scheduler} matrix (ISSUE 4).

    For the instrumented cells every delivered submission crossed the wire
    inside a framed ``SUBMISSION_BATCH`` / ``MAILBOX_FETCH_BATCH`` envelope
    and was re-decoded from those bytes, so equality here also proves the
    batch codecs lossless.
    """

    @pytest.fixture(scope="class")
    def reference(self):
        deployment = build("serial", transport="inproc", population="object")
        return fingerprints(deployment.run_rounds(conversation_script(deployment)))

    @pytest.mark.parametrize("staggered", (False, True))
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_population_matrix_cell(self, reference, backend, transport, staggered):
        deployment = build(backend, transport=transport, population="batched")
        actual = fingerprints(
            deployment.run_rounds(conversation_script(deployment), staggered=staggered)
        )
        deployment.close()
        assert actual == reference

    def test_population_without_cover_messages(self, reference):
        object_path = build(use_cover_messages=False)
        batched = build(population="batched", use_cover_messages=False)
        expected = fingerprints(object_path.run_rounds(conversation_script(object_path)))
        actual = fingerprints(batched.run_rounds(conversation_script(batched)))
        assert actual == expected

    def test_population_with_extra_submissions(self):
        """Injected adversarial submissions ride the per-submission path
        unchanged while honest traffic is batched."""

        def run(population):
            deployment = build(seed=9, population=population)
            chain = deployment.chains[0]
            deployment.engine.announce(1)
            forged = make_submission(
                deployment.group,
                chain,
                1,
                "mallory",
                deployment.users[0].public_bytes,
                b"\x07" * 32,
            )
            bad = type(forged)(
                chain_id=forged.chain_id,
                sender="mallory",
                dh_public=forged.dh_public,
                ciphertext=forged.ciphertext,
                proof=type(forged.proof)(commitment=forged.proof.commitment, response=1),
            )
            reports = deployment.run_rounds(
                [deployment.round_spec(extra_submissions=[bad]), deployment.round_spec()]
            )
            deployment.close()
            return reports

        expected = run("object")
        actual = run("batched")
        assert expected[0].rejected_senders == ["mallory"]
        assert fingerprints(actual) == fingerprints(expected)

    def test_population_ledger_uses_batch_frames(self):
        from repro.transport import MAILBOX_FETCH_BATCH, SUBMISSION_BATCH

        deployment = build(population="batched", transport="instrumented")
        deployment.run_round()
        kinds = set(deployment.traffic_ledger.bytes_by_kind(1))
        assert SUBMISSION_BATCH in kinds
        assert MAILBOX_FETCH_BATCH in kinds
        # One framed upload per chain, not one per (user, chain).
        submission_records = [
            record
            for record in deployment.traffic_ledger.records
            if record.kind == SUBMISSION_BATCH
        ]
        assert len(submission_records) == deployment.num_chains
        deployment.close()


#: The streaming-pipeline axis of the parity matrix (ISSUE 6): the
#: monolithic whole-population pass, chunked builds on the coordinating
#: process, and chunked builds fanned out to a forked worker pool.  With 6
#: users and chunk size 2 every round streams three chunks, and 3 workers
#: exercise the full pool (each worker owns one chunk per pass).
CHUNKINGS = (
    pytest.param({}, id="monolithic"),
    pytest.param({"population_chunk_size": 2}, id="chunked-serial"),
    pytest.param(
        {"population_chunk_size": 2, "population_build_workers": 3},
        id="chunked-workers",
    ),
)


class TestStreamingParity:
    """The streaming population pipeline is bit-identical to the per-user
    path across {monolithic, chunked×1, chunked×N-workers} × {backend} ×
    {transport} × {scheduler} (ISSUE 6).

    The chunked cells stream every flow: per-(chain, chunk) submission
    uploads, per-(chain, chunk) mailbox deliveries, and per-(shard, chunk)
    fetch downloads.  For the forked cells each chunk's batches additionally
    crossed a worker pipe as wire bytes and the parent replayed the RNG
    cursors — so equality across the six-round script (which spends banked
    covers and runs three more rounds on the replayed streams) proves the
    cursor replay exact.
    """

    @pytest.fixture(scope="class")
    def reference(self):
        deployment = build("serial", transport="inproc", population="object")
        return fingerprints(deployment.run_rounds(conversation_script(deployment)))

    @pytest.mark.parametrize("staggered", (False, True))
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("chunking", CHUNKINGS)
    def test_streaming_matrix_cell(self, reference, chunking, backend, transport, staggered):
        deployment = build(backend, transport=transport, population="batched", **chunking)
        actual = fingerprints(
            deployment.run_rounds(conversation_script(deployment), staggered=staggered)
        )
        deployment.close()
        assert actual == reference

    @pytest.mark.parametrize("chunking", CHUNKINGS)
    def test_streaming_blame_recovery_cell(self, chunking):
        """Blame, eviction, and chain re-formation under streamed builds."""
        from repro.faults.scenarios import tamper_and_recover
        from tests.test_faults import run_scenario

        expected = run_scenario(tamper_and_recover()).canonical_bytes()
        for backend, staggered in (("serial", False), ("multiprocess", True)):
            report = run_scenario(
                tamper_and_recover(), backend, staggered,
                population="batched", **chunking,
            )
            assert report.canonical_bytes() == expected

    def test_chunk_sizes_beyond_population_match(self, reference):
        """chunk=1 (one user per frame) and chunk≫users (single chunk)."""
        for chunk_size in (1, 100):
            deployment = build(population="batched", population_chunk_size=chunk_size)
            actual = fingerprints(
                deployment.run_rounds(conversation_script(deployment))
            )
            deployment.close()
            assert actual == reference

    def test_streaming_ledger_frames_per_chunk(self):
        """The instrumented ledger sees one framed upload per (chain, chunk)."""
        from repro.transport import SUBMISSION_BATCH

        deployment = build(
            population="batched", transport="instrumented", population_chunk_size=2
        )
        deployment.run_round()
        submission_records = [
            record
            for record in deployment.traffic_ledger.records
            if record.kind == SUBMISSION_BATCH
        ]
        # One framed upload per (chain, chunk) the chunk's users touch — 6
        # users in chunks of 2 → 3 chunks — instead of one per chain.
        assignments = deployment.population.chain_assignments
        users = deployment.users
        expected = sum(
            len({chain for user in users[start:start + 2] for chain in assignments[user.name]})
            for start in range(0, len(users), 2)
        )
        assert expected > deployment.num_chains
        assert len(submission_records) == expected
        deployment.close()


class TestPrecomputeParity:
    """The AHS precompute phase is bit-identical to the online path (ISSUE 5).

    With ``DeploymentConfig.precompute=True`` (the default) the chains'
    public-key work runs in the engine's precompute stage — overlapped with
    the previous round's mixing under the staggered scheduler — and the
    online mix phase serves blinded keys and layer keys from the cached
    tables.  Every cell of {serial, parallel, multiprocess} × {inproc,
    instrumented} × {sequential, staggered} (plus the batched-population
    path) must equal the online-only reference, including rounds after a
    blame conviction and chain re-formation.
    """

    @pytest.fixture(scope="class")
    def reference(self):
        deployment = build("serial", transport="inproc", precompute=False)
        return fingerprints(deployment.run_rounds(conversation_script(deployment)))

    @pytest.mark.parametrize("staggered", (False, True))
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_precompute_matrix_cell(self, reference, backend, transport, staggered):
        deployment = build(backend, transport=transport, precompute=True)
        actual = fingerprints(
            deployment.run_rounds(conversation_script(deployment), staggered=staggered)
        )
        deployment.close()
        assert actual == reference

    @pytest.mark.parametrize("staggered", (False, True))
    def test_precompute_with_batched_population(self, reference, staggered):
        deployment = build("parallel", population="batched", precompute=True)
        actual = fingerprints(
            deployment.run_rounds(conversation_script(deployment), staggered=staggered)
        )
        deployment.close()
        assert actual == reference

    def test_precompute_stage_recorded_only_when_enabled(self):
        enabled = build(precompute=True)
        report = enabled.run_round()
        assert "precompute" in report.stage_seconds and "mix" in report.stage_seconds
        enabled.close()
        disabled = build(precompute=False)
        report = disabled.run_round()
        assert "precompute" not in report.stage_seconds and "mix" in report.stage_seconds
        disabled.close()

    def test_precompute_survives_blame_recovery(self):
        """Post-``recover()`` rounds stay bit-identical with precompute on.

        The tamper scenario convicts a server at round 2, evicts it, and
        re-forms the chain; rounds 3+ run on fresh members whose precompute
        tables are rebuilt for the new ceremony.
        """
        from repro.faults.scenarios import tamper_and_recover
        from tests.test_faults import run_scenario

        expected = run_scenario(tamper_and_recover(), precompute=False).canonical_bytes()
        for backend, staggered in (("serial", False), ("parallel", True), ("multiprocess", True)):
            report = run_scenario(
                tamper_and_recover(), backend, staggered, precompute=True
            )
            assert report.canonical_bytes() == expected

    def test_reform_invalidates_old_chain_precompute(self):
        """Stale tables die with the re-formed chain's retired members."""
        deployment = build()
        deployment.run_round()
        old_chain = deployment.chains[0]
        record = old_chain.members[0].round_record(1)
        assert record.precomputed
        deployment.note_convictions(1, old_chain.chain_id, [old_chain.members[0].server_name])
        deployment.recover()
        for member in old_chain.members:
            assert member.round_record(1).precomputed is None
        # The re-formed chain (fresh members, fresh ceremony) still delivers.
        report = deployment.run_round()
        assert report.all_chains_delivered()
        assert deployment.chains[0].members[0].round_record(2).precomputed
        deployment.close()


class TestPrecomputePropertyParity:
    """Hypothesis: member-level precompute + slim online == plain online.

    For arbitrary entry batches — valid submissions, tampered ciphertexts
    (the blame/failed-open path), or a mix — ``precompute_round`` followed
    by ``process_round`` must produce exactly the ``MixStepResult`` that
    ``process_round`` alone produces on an identically-seeded twin member.
    """

    @settings(max_examples=12, deadline=None)
    @given(st.data())
    def test_precompute_then_online_equals_process_round(self, data):
        from repro.crypto.keys import KeyPair
        from repro.mixnet.messages import BatchEntry
        from tests.test_ahs_protocol import build_chain

        group = _property_group()
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        count = data.draw(st.integers(min_value=0, max_value=4), label="entries")
        corrupt = data.draw(
            st.lists(st.booleans(), min_size=count, max_size=count), label="corrupt"
        )
        online = build_chain(group, length=2, seed=seed)
        precomputed = build_chain(group, length=2, seed=seed)
        online.begin_round(1)
        precomputed.begin_round(1)
        recipient = KeyPair.generate(group)
        submissions = [
            make_submission(
                group, online, 1, f"user-{index}", recipient.public_bytes,
                bytes([index + 1]) * 32,
            )
            for index in range(count)
        ]

        def entries_for(chain):
            accepted, rejected = chain.accept_submissions(1, submissions)
            assert rejected == []
            entries = list(accepted)
            for index, flag in enumerate(corrupt):
                if flag:  # tampered ciphertext → failed open → blame path
                    entries[index] = BatchEntry(
                        dh_public=entries[index].dh_public,
                        ciphertext=bytes([entries[index].ciphertext[0] ^ 0xFF])
                        + entries[index].ciphertext[1:],
                    )
            return entries

        entries = entries_for(online)
        twin_entries = entries_for(precomputed)
        member_online = online.members[0]
        member_pre = precomputed.members[0]
        blinded = member_pre.precompute_round(1, [entry.dh_public for entry in entries])
        assert blinded == [
            group.scalar_mult(entry.dh_public, member_pre.blinding_secret)
            for entry in entries
        ]
        result_pre = member_pre.process_round(1, twin_entries)
        result_online = member_online.process_round(1, entries)
        assert result_pre.position == result_online.position
        assert result_pre.entries == result_online.entries
        assert result_pre.proof == result_online.proof
        assert result_pre.failed_indices == result_online.failed_indices
        # The slim online phase really did consult the table.
        table = member_pre.round_record(1).precomputed
        assert table is not None and len(table) == len(
            {group.encode(entry.dh_public) for entry in entries}
        )
        assert member_online.round_record(1).precomputed is None

    @settings(max_examples=6, deadline=None)
    @given(st.data())
    def test_chain_level_precompute_parity_with_blame(self, data):
        """Whole-chain cascade parity, including halted/blamed rounds."""
        from repro.crypto.keys import KeyPair
        from repro.mixnet.messages import BatchEntry
        from tests.test_ahs_protocol import build_chain

        group = _property_group()
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        count = data.draw(st.integers(min_value=1, max_value=4), label="entries")
        corrupt_index = data.draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=count - 1)),
            label="corrupt_index",
        )
        online = build_chain(group, length=2, seed=seed)
        precomputed = build_chain(group, length=2, seed=seed)
        online.begin_round(1)
        precomputed.begin_round(1)
        recipient = KeyPair.generate(group)
        submissions = [
            make_submission(
                group, online, 1, f"user-{index}", recipient.public_bytes,
                bytes([index + 1]) * 32,
            )
            for index in range(count)
        ]

        def run(chain, with_precompute):
            chain.accept_submissions(1, submissions)
            if corrupt_index is not None:
                entry = chain._entries[1][corrupt_index]
                chain._entries[1][corrupt_index] = BatchEntry(
                    dh_public=entry.dh_public,
                    ciphertext=bytes([entry.ciphertext[0] ^ 0xFF]) + entry.ciphertext[1:],
                )
            if with_precompute:
                chain.precompute_round(1, [e.dh_public for e in chain._entries[1]])
            return chain.run_round(1)

        result_online = run(online, with_precompute=False)
        result_pre = run(precomputed, with_precompute=True)
        assert result_pre.status == result_online.status
        assert [m.to_bytes() for m in result_pre.mailbox_messages] == [
            m.to_bytes() for m in result_online.mailbox_messages
        ]
        assert result_pre.rejected_senders == result_online.rejected_senders
        assert result_pre.invalid_inner_count == result_online.invalid_inner_count
        if result_online.blame_verdict is not None:
            assert result_pre.blame_verdict.to_bytes() == result_online.blame_verdict.to_bytes()


class TestBackendParity:
    def test_parallel_backend_matches_serial(self):
        serial = build("serial")
        parallel = build("parallel")
        expected = fingerprints(serial.run_rounds(conversation_script(serial)))
        actual = fingerprints(parallel.run_rounds(conversation_script(parallel)))
        parallel.close()
        assert actual == expected

    def test_staggered_matches_serial(self):
        serial = build()
        staggered = build()
        expected = fingerprints(serial.run_rounds(conversation_script(serial)))
        actual = fingerprints(
            staggered.run_rounds(conversation_script(staggered), staggered=True)
        )
        assert actual == expected

    def test_staggered_parallel_matches_serial(self):
        serial = build()
        combined = build("parallel")
        expected = fingerprints(serial.run_rounds(conversation_script(serial)))
        actual = fingerprints(
            combined.run_rounds(conversation_script(combined), staggered=True)
        )
        combined.close()
        assert actual == expected

    def test_parity_without_cover_messages(self):
        expected = None
        for staggered in (False, True):
            deployment = build("parallel", use_cover_messages=False)
            a, b = deployment.users[0].name, deployment.users[1].name
            deployment.start_conversation(a, b)
            specs = [
                deployment.round_spec(payloads={a: b"one"}),
                deployment.round_spec(payloads={b: b"two"}),
                deployment.round_spec(),
            ]
            actual = fingerprints(deployment.run_rounds(specs, staggered=staggered))
            deployment.close()
            if expected is None:
                expected = actual
            else:
                assert actual == expected

    def test_parity_with_rejected_extra_submissions(self):
        """An adversarial submission with a bogus proof is rejected identically."""

        def run(backend, staggered, transport="inproc"):
            deployment = build(backend, seed=9, transport=transport)
            chain = deployment.chains[0]
            deployment.engine.announce(1)
            forged = make_submission(
                deployment.group,
                chain,
                1,
                "mallory",
                deployment.users[0].public_bytes,
                b"\x07" * 32,
            )
            bad = type(forged)(
                chain_id=forged.chain_id,
                sender="mallory",
                dh_public=forged.dh_public,
                ciphertext=forged.ciphertext,
                proof=type(forged.proof)(commitment=forged.proof.commitment, response=1),
            )
            specs = [
                deployment.round_spec(extra_submissions=[bad]),
                deployment.round_spec(),
            ]
            reports = deployment.run_rounds(specs, staggered=staggered)
            deployment.close()
            return reports

        expected = run("serial", False)
        assert expected[0].rejected_senders == ["mallory"]
        for backend, staggered, transport in (
            ("parallel", False, "inproc"),
            ("serial", True, "inproc"),
            ("parallel", True, "inproc"),
            ("serial", False, "instrumented"),
            ("multiprocess", False, "inproc"),
            ("multiprocess", True, "instrumented"),
        ):
            reports = run(backend, staggered, transport)
            assert fingerprints(reports) == fingerprints(expected)

    def test_staggered_defers_notice_targets_only(self):
        """The overlapped collect builds everyone except pending notice recipients."""
        deployment = build()
        a, b = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(a, b)
        engine = deployment.engine
        ctx1 = engine.prepare(deployment.round_spec(payloads={a: b"x"}))
        engine.collect(ctx1)
        engine.finalize_collect(ctx1)
        assert ctx1.notice_targets == set()
        engine.mix(ctx1)
        engine.deliver(ctx1)
        engine.fetch(ctx1)

        ctx2 = engine.prepare(deployment.round_spec(offline_users={b}))
        engine.collect(ctx2)
        assert ctx2.notice_targets == {a}
        engine.finalize_collect(ctx2)
        engine.mix(ctx2)
        engine.deliver(ctx2)
        engine.fetch(ctx2)

        ctx3 = engine.prepare(deployment.round_spec())
        engine.collect(ctx3, defer=frozenset(ctx2.notice_targets))
        assert ctx3.deferred_users == [a]
        assert a not in ctx3.user_submissions
        engine.finalize_collect(ctx3)
        assert a in ctx3.user_submissions
        assert ctx3.deferred_users == []


class TestBlameParity:
    """The blame protocol is execution-strategy-invariant (ISSUE 3).

    The same :class:`~repro.faults.plan.FaultPlan` must yield the identical
    verdict — same convicted server, byte-identical wire encoding — under
    serial, parallel, and multiprocess execution, sequential or staggered.
    For the multiprocess cells the verdict crossed the worker pipe as wire
    bytes (:func:`repro.transport.codec.encode_blame_verdict`), so equality
    also proves that encoding lossless.
    """

    def test_tampering_verdict_identical_across_backends(self):
        from repro.faults.scenarios import tamper_and_recover
        from tests.test_faults import run_scenario

        verdict_blobs = set()
        scenario_fingerprints = set()
        for backend in BACKENDS:
            for staggered in (False, True):
                report = run_scenario(tamper_and_recover(), backend, staggered)
                (verdict,) = report.outcome_for(2).verdicts.values()
                assert verdict.malicious_servers == ["server-0"]
                assert verdict.malicious_users == []
                verdict_blobs.add(verdict.to_bytes())
                scenario_fingerprints.add(report.canonical_bytes())
        assert len(verdict_blobs) == 1
        assert len(scenario_fingerprints) == 1

    def test_user_walkback_verdict_identical_across_backends(self):
        from repro.faults.scenarios import misauthenticating_user
        from tests.test_faults import run_scenario

        verdict_blobs = set()
        for backend in BACKENDS:
            report = run_scenario(misauthenticating_user(), backend)
            (verdict,) = report.outcome_for(2).verdicts.values()
            assert verdict.malicious_users == ["mallory"]
            verdict_blobs.add(verdict.to_bytes())
        assert len(verdict_blobs) == 1


class TestBackendConfiguration:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            make_backend("quantum")
        with pytest.raises(ConfigurationError):
            DeploymentConfig(execution_backend="quantum").validate()

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelBackend(max_workers=0)
        with pytest.raises(ConfigurationError):
            DeploymentConfig(max_workers=0).validate()

    def test_max_workers_one_still_correct(self):
        deployment = build("parallel", max_workers=1)
        report = deployment.run_round()
        deployment.close()
        assert report.all_chains_delivered()

    def test_use_backend_swaps_engine_backend(self):
        deployment = build()
        assert isinstance(deployment.engine.backend, SerialBackend)
        deployment.use_backend(ParallelBackend(max_workers=2))
        assert isinstance(deployment.engine.backend, ParallelBackend)
        report = deployment.run_round()
        deployment.close()
        assert report.all_chains_delivered()

    def test_backend_close_is_idempotent(self):
        backend = ParallelBackend(max_workers=2)
        assert backend.map_chains(lambda value: value * 2, [1, 2, 3]) == [2, 4, 6]
        backend.close()
        backend.close()

    def test_map_chains_propagates_worker_exception(self):
        backend = ParallelBackend(max_workers=2)

        def boom(value):
            if value == 2:
                raise RuntimeError("chain exploded")
            return value

        with pytest.raises(RuntimeError, match="chain exploded"):
            backend.map_chains(boom, [1, 2, 3])
        backend.close()

    def test_round_engine_usable_standalone(self):
        """The engine API works without going through Deployment.run_round."""
        deployment = build()
        engine = RoundEngine(deployment, backend=SerialBackend())
        report = engine.execute_round(deployment.round_spec())
        assert report.round_number == 1
        assert report.all_chains_delivered()

    def test_staggered_scheduler_for_deployment(self):
        deployment = build()
        scheduler = StaggeredScheduler.for_deployment(deployment)
        reports = scheduler.run_rounds([deployment.round_spec(), deployment.round_spec()])
        assert [report.round_number for report in reports] == [1, 2]


@pytest.mark.distributed
class TestDistributedParity:
    """The localhost-tcp cell of the parity matrix (DESIGN.md §10.5).

    A real process-per-role deployment — coordinator, two mix roles, one
    mailbox role, four OS processes — runs the acceptance scenario
    (tamper at round 2, blame, recovery) and its RoundReports must be
    bit-identical to the ordinary in-process reference.  This is the one
    test where "the network is unobservable" means actual sockets between
    actual processes, not an in-process stand-in.
    """

    def test_localhost_tcp_matches_inproc_reference(self):
        from repro.faults.runner import ScenarioRunner
        from repro.faults.scenarios import tamper_and_recover
        from repro.runner import protocol
        from repro.runner.harness import run_localhost

        config = DeploymentConfig(
            num_servers=4,
            num_users=6,
            num_chains=3,
            chain_length=2,
            seed=42,
            group_kind="modp",
            max_workers=2,
        )
        plan = tamper_and_recover()

        reference_deployment = Deployment.create(config)
        try:
            reference = ScenarioRunner(reference_deployment, plan).run()
        finally:
            reference_deployment.close()
        expected = protocol.scenario_summary(reference)

        summary = run_localhost(config, plan, num_mix=2, timeout=240.0)

        assert summary == expected
        assert summary["canonical"] == reference.canonical_bytes().hex()
        statuses = {entry["round"]: entry["statuses"] for entry in summary["rounds"]}
        assert statuses[2]["0"] == "halted-blame"
        assert summary["evicted_servers"] == ["server-0"]
        assert summary["recoveries"], "the scenario must include a recovery round"

    def test_localhost_tcp_streamed_native_matches_reference(self):
        """The new axes survive real process separation: every role process
        resolves the native tier (or its documented downgrade) from the
        shipped config and keeps its chains' batches wire-resident, and
        the scenario — tamper, blame, recovery included — still matches
        the eager in-process python-tier reference bit for bit."""
        import warnings as _warnings

        from repro.crypto import kernels
        from repro.faults.runner import ScenarioRunner
        from repro.faults.scenarios import tamper_and_recover
        from repro.registry import CryptoKernelKind
        from repro.runner import protocol
        from repro.runner.harness import run_localhost

        base = dict(
            num_servers=4,
            num_users=6,
            num_chains=3,
            chain_length=2,
            seed=42,
            group_kind="modp",
            max_workers=2,
        )
        plan = tamper_and_recover()

        reference_deployment = Deployment.create(DeploymentConfig(**base))
        try:
            reference = ScenarioRunner(reference_deployment, plan).run()
        finally:
            reference_deployment.close()
        expected = protocol.scenario_summary(reference)

        kernels.reset_kernel_for_tests()
        try:
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", RuntimeWarning)
                config = DeploymentConfig(
                    **base,
                    crypto_kernel=CryptoKernelKind.NATIVE,
                    stream_mix=True,
                )
                summary = run_localhost(config, plan, num_mix=2, timeout=240.0)
        finally:
            kernels.reset_kernel_for_tests()

        assert summary == expected
        assert summary["canonical"] == reference.canonical_bytes().hex()


#: The crypto-kernel axis (DESIGN.md §11): every tier must be bit-identical.
#: ``native`` cells run even without the extension — the documented
#: downgrade path resolves them to the best lower tier, so the cell then
#: re-proves that tier (and proves the downgrade harmless) instead of
#: skipping.
KERNELS = ("python", "numpy", "native")


class TestCryptoKernelStreamParity:
    """Kernel tiers × streamed mix are unobservable (DESIGN.md §11).

    The tentpole's acceptance matrix: {python, numpy, native} crypto
    kernels × {eager, streamed} mix intake, over the six-round
    conversation script, against the all-reference cell (python kernels,
    eager mix).  ``canonical_bytes`` equality means the tier and the
    batch residency model are both invisible in every observable byte —
    delivered messages, rejections, statuses, mailbox contents.
    """

    @pytest.fixture(autouse=True)
    def _kernel_state(self):
        from repro.crypto import kernels

        kernels.reset_kernel_for_tests()
        yield
        kernels.reset_kernel_for_tests()

    @pytest.fixture(scope="class")
    def reference(self):
        from repro.crypto import kernels
        from repro.registry import CryptoKernelKind

        kernels.reset_kernel_for_tests()
        try:
            deployment = build(
                "serial", transport="inproc",
                crypto_kernel=CryptoKernelKind.PYTHON, stream_mix=False,
            )
            return fingerprints(deployment.run_rounds(conversation_script(deployment)))
        finally:
            kernels.reset_kernel_for_tests()

    @pytest.mark.parametrize("stream_mix", (False, True))
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kernel_stream_cell(self, reference, kernel, stream_mix, transport):
        import warnings as _warnings

        from repro.registry import CryptoKernelKind

        with _warnings.catch_warnings():
            # The native cell may legitimately downgrade on a box with no
            # C toolchain; the warning is the contract, not a failure.
            _warnings.simplefilter("ignore", RuntimeWarning)
            deployment = build(
                transport=transport,
                crypto_kernel=CryptoKernelKind(kernel),
                stream_mix=stream_mix,
            )
            actual = fingerprints(
                deployment.run_rounds(conversation_script(deployment))
            )
            deployment.close()
        assert actual == reference

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_kernel_stream_blame_recovery(self, kernel):
        """Blame, eviction, and chain re-formation under streamed intake.

        The streamed chain retains only sender stubs and the wire blob;
        this proves that is enough state for the whole blame arc — the
        accusation, the history replay, the re-formed chain's rounds —
        to match the eager reference byte for byte, on every tier.
        """
        import warnings as _warnings

        from repro.faults.scenarios import tamper_and_recover
        from repro.registry import CryptoKernelKind
        from tests.test_faults import run_scenario

        expected = run_scenario(tamper_and_recover()).canonical_bytes()
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", RuntimeWarning)
            for backend, staggered in (("serial", False), ("multiprocess", True)):
                report = run_scenario(
                    tamper_and_recover(), backend, staggered,
                    crypto_kernel=CryptoKernelKind(kernel), stream_mix=True,
                )
                assert report.canonical_bytes() == expected

    @pytest.mark.parametrize("stream_mix", (False, True))
    def test_kernel_stream_with_batched_population(self, reference, stream_mix):
        """The population fast path composes with both new axes."""
        from repro.registry import CryptoKernelKind

        deployment = build(
            population="batched",
            crypto_kernel=CryptoKernelKind.NATIVE if _native_available()
            else CryptoKernelKind.PYTHON,
            stream_mix=stream_mix,
        )
        actual = fingerprints(deployment.run_rounds(conversation_script(deployment)))
        deployment.close()
        assert actual == reference

    def test_streamed_entries_are_wire_resident(self):
        """The streamed chain really holds EncodedBatch + sender stubs, not
        decoded entries — the retained-memory claim's structural half."""
        from repro.mixnet.messages import EncodedBatch
        from repro.registry import CryptoKernelKind

        deployment = build(
            crypto_kernel=CryptoKernelKind.PYTHON, stream_mix=True
        )
        deployment.run_round()
        chain = deployment.chains[0]
        stored = chain._entries[1]
        assert isinstance(stored, EncodedBatch)
        for submission in chain._submissions[1]:
            assert not hasattr(submission, "ciphertext")
            assert isinstance(submission.sender, str)
        deployment.close()


def _native_available():
    from repro.crypto import kernels

    return kernels.native_available()
