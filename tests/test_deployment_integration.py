"""Integration tests: full deployments running complete rounds."""

import pytest

from repro.client.user import ReceivedMessage
from repro.errors import ConfigurationError
from repro.coordinator.network import DeploymentConfig

from tests.conftest import make_deployment


class TestDeploymentConstruction:
    def test_defaults_follow_paper(self):
        config = DeploymentConfig(num_servers=10, num_users=5, malicious_fraction=0.2, security_bits=8)
        assert config.resolved_num_chains() == 10  # n = N (§5.2.1)
        assert config.resolved_chain_length() >= 3

    def test_chain_length_capped_by_servers(self):
        config = DeploymentConfig(num_servers=3, num_users=2, malicious_fraction=0.2, security_bits=60)
        assert config.resolved_chain_length() == 3

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            DeploymentConfig(num_servers=0).validate()
        with pytest.raises(ConfigurationError):
            DeploymentConfig(num_users=-1).validate()
        with pytest.raises(ConfigurationError):
            DeploymentConfig(malicious_fraction=1.5).validate()
        with pytest.raises(ConfigurationError):
            DeploymentConfig(group_kind="rsa").validate()

    def test_create_builds_everything(self, deployment):
        assert len(deployment.chains) == 3
        assert len(deployment.users) == 6
        assert len(deployment.server_nodes) == 4
        assert all(chain.public_keys is not None for chain in deployment.chains)
        assert deployment.ell() == 2

    def test_deterministic_with_seed(self):
        one = make_deployment(seed=5)
        two = make_deployment(seed=5)
        assert [u.public_bytes for u in one.users] == [u.public_bytes for u in two.users]
        assert [t.servers for t in one.topologies] == [t.servers for t in two.topologies]

    def test_unknown_lookups(self, deployment):
        with pytest.raises(ConfigurationError):
            deployment.user("nobody")
        with pytest.raises(ConfigurationError):
            deployment.chain(99)


class TestRounds:
    def test_conversation_round_trip(self, deployment):
        alice, bob = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(alice, bob)
        report = deployment.run_round(payloads={alice: b"hello bob", bob: b"hello alice"})
        assert report.conversation_payloads(bob) == [b"hello bob"]
        assert report.conversation_payloads(alice) == [b"hello alice"]
        assert report.all_chains_delivered()

    def test_uniform_mailbox_counts(self, deployment):
        """Every user receives exactly ℓ messages whether or not they converse (§4.1)."""
        alice, bob = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(alice, bob)
        report = deployment.run_round(payloads={alice: b"x", bob: b"y"})
        ell = deployment.ell()
        assert set(report.mailbox_counts.values()) == {ell}

    def test_idle_users_receive_only_loopbacks(self, deployment):
        report = deployment.run_round()
        for user in deployment.users:
            kinds = {message.kind for message in report.delivered[user.name]}
            assert kinds == {ReceivedMessage.KIND_LOOPBACK}

    def test_round_numbers_advance(self, deployment):
        first = deployment.run_round()
        second = deployment.run_round()
        assert first.round_number == 1
        assert second.round_number == 2

    def test_multiple_conversations(self):
        deployment = make_deployment(num_users=8, seed=3)
        a, b = deployment.users[0].name, deployment.users[1].name
        c, d = deployment.users[2].name, deployment.users[3].name
        deployment.start_conversation(a, b)
        deployment.start_conversation(c, d)
        report = deployment.run_round(payloads={a: b"1", b: b"2", c: b"3", d: b"4"})
        assert report.conversation_payloads(b) == [b"1"]
        assert report.conversation_payloads(a) == [b"2"]
        assert report.conversation_payloads(d) == [b"3"]
        assert report.conversation_payloads(c) == [b"4"]

    def test_end_conversation_reverts_to_loopbacks(self, deployment):
        alice, bob = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(alice, bob)
        deployment.run_round(payloads={alice: b"hi", bob: b"hi"})
        deployment.end_conversation(alice, bob)
        report = deployment.run_round()
        assert report.conversation_payloads(alice) == []
        assert report.conversation_payloads(bob) == []
        assert set(report.mailbox_counts.values()) == {deployment.ell()}

    def test_empty_payload_defaults(self, deployment):
        alice, bob = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(alice, bob)
        report = deployment.run_round()
        assert report.conversation_payloads(bob) == [b""]

    def test_total_submission_count(self, deployment):
        report = deployment.run_round()
        assert report.total_submissions == len(deployment.users) * deployment.ell()

    def test_report_structure(self, deployment):
        report = deployment.run_round()
        assert set(report.delivered) == {user.name for user in deployment.users}
        assert report.rejected_senders == []
        assert report.dropped_unknown_recipients == 0

    def test_without_cover_messages(self):
        deployment = make_deployment(use_cover_messages=False)
        report = deployment.run_round()
        assert deployment._cover_store == {}
        assert report.all_chains_delivered()


class TestEd25519Integration:
    """One full round on the real curve to cover the production configuration."""

    def test_round_on_ed25519(self):
        deployment = make_deployment(
            num_servers=3, num_users=3, num_chains=1, chain_length=2, seed=1,
            group_kind="ed25519", use_cover_messages=False,
        )
        alice, bob = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(alice, bob)
        report = deployment.run_round(payloads={alice: b"over the curve", bob: b"indeed"})
        assert report.conversation_payloads(bob) == [b"over the curve"]
        assert report.conversation_payloads(alice) == [b"indeed"]
        assert set(report.mailbox_counts.values()) == {deployment.ell()}
