"""Tests for the test-oriented modular group, including generic group laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.group import ModPGroup
from repro.errors import DecodingError

GROUP = ModPGroup(bits=96)
SCALARS = st.integers(min_value=1, max_value=GROUP.order - 1)


class TestStructure:
    def test_order_matches_safe_prime(self):
        assert GROUP.order == (GROUP.prime - 1) // 2

    def test_generator_in_subgroup(self):
        assert GROUP.is_in_prime_subgroup(GROUP.base())

    def test_deterministic_parameters(self):
        assert ModPGroup(bits=96).prime == GROUP.prime

    def test_element_size_fixed_at_32(self):
        assert GROUP.element_size == 32
        assert len(GROUP.encode(GROUP.base())) == 32


class TestGroupLaws:
    def test_identity(self):
        element = GROUP.base_mult(42)
        assert GROUP.add(element, GROUP.identity()) == element

    def test_negation(self):
        element = GROUP.base_mult(7)
        assert GROUP.add(element, GROUP.neg(element)) == GROUP.identity()

    def test_sub(self):
        assert GROUP.sub(GROUP.base_mult(10), GROUP.base_mult(4)) == GROUP.base_mult(6)

    def test_sum(self):
        assert GROUP.sum(GROUP.base_mult(i) for i in (1, 2, 3)) == GROUP.base_mult(6)

    @given(SCALARS, SCALARS)
    @settings(max_examples=50)
    def test_exponent_addition(self, a, b):
        assert GROUP.add(GROUP.base_mult(a), GROUP.base_mult(b)) == GROUP.base_mult(
            (a + b) % GROUP.order
        )

    @given(SCALARS, SCALARS)
    @settings(max_examples=50)
    def test_dh_agreement(self, a, b):
        assert GROUP.diffie_hellman(GROUP.base_mult(a), b) == GROUP.diffie_hellman(
            GROUP.base_mult(b), a
        )

    @given(SCALARS, SCALARS, SCALARS)
    @settings(max_examples=50)
    def test_blinding_commutes(self, x, bsk1, bsk2):
        point = GROUP.base_mult(x)
        assert GROUP.scalar_mult(GROUP.scalar_mult(point, bsk1), bsk2) == GROUP.scalar_mult(
            GROUP.scalar_mult(point, bsk2), bsk1
        )


class TestEncoding:
    @given(SCALARS)
    @settings(max_examples=50)
    def test_roundtrip(self, scalar):
        element = GROUP.base_mult(scalar)
        assert GROUP.decode(GROUP.encode(element)) == element

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(DecodingError):
            GROUP.decode(b"\x01" * 5)

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(DecodingError):
            GROUP.decode(b"\xff" * 32)

    def test_scalar_roundtrip(self):
        scalar = GROUP.random_scalar()
        assert GROUP.decode_scalar(GROUP.encode_scalar(scalar)) == scalar

    def test_hash_to_scalar_in_range(self):
        value = GROUP.hash_to_scalar(b"transcript")
        assert 0 <= value < GROUP.order
