"""Differential fuzzers and tier plumbing for the native crypto kernels.

Every kernel the ``_xrdkernels`` cffi extension implements is held
bit-identical to its Python reference here, under hypothesis-driven inputs:
random keys/nonces/lengths for the symmetric kernels, moduli across every
limb count and scalars at the group-order edges for the Montgomery kernels,
plus the structural edges (empty batches, single-entry batches, forged
tags, short ciphertexts).  The fuzzers call the :mod:`repro.crypto.kernels`
wrappers directly — the same entry points the hot loops dispatch through —
so a mismatch pins the exact kernel, not a composite code path.

The tier-selection machinery (lazy resolution, env override, downgrade
warning, registry factories, ``DeploymentConfig.crypto_kernel``) is tested
unconditionally; the differential classes skip as a block when the
extension is unavailable (no C compiler), which is itself the documented
degraded mode.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import aead, chacha20, kernels
from repro.crypto import group as group_mod
from repro.crypto.aead import adec, aenc
from repro.crypto.chacha20 import chacha20_block
from repro.crypto.group import (
    Ed25519Group,
    reset_window_table_caches,
)
from repro.errors import ConfigurationError, CryptoError
from repro.registry import CRYPTO_KERNELS, CryptoKernelKind

NATIVE = kernels.native_available()

needs_native = pytest.mark.skipif(
    not NATIVE, reason="_xrdkernels extension not built (no C compiler?)"
)


@pytest.fixture(autouse=True)
def _kernel_state():
    """Every test starts and ends with the lazily-resolved default tier."""
    kernels.reset_kernel_for_tests()
    yield
    kernels.reset_kernel_for_tests()


# -- strategies --------------------------------------------------------------

keys_st = st.binary(min_size=32, max_size=32)
nonces_st = st.binary(min_size=12, max_size=12)
counters_st = st.integers(min_value=0, max_value=2**32 - 1)

#: Odd moduli across every runtime limb count the Montgomery code supports
#: (1–4 × 64-bit), including the deployment curve-scale prime 2^255 − 19
#: and a non-prime odd modulus (the kernel is modular exponentiation, not
#: field arithmetic — the reference ``pow`` accepts any odd modulus).
MODULI = (
    2**61 - 1,
    2**89 - 1,
    2**127 - 1,
    2**192 - 2**64 - 1,
    2**255 - 19,
    (2**96 - 17) * 3,
)


def _elements_st(modulus):
    edge = st.sampled_from([0, 1, modulus - 1])
    return st.lists(
        st.integers(min_value=0, max_value=modulus - 1) | edge,
        min_size=0,
        max_size=12,
    )


def _exponent_st(modulus):
    # The callers reduce mod the group order first, so the kernel contract
    # is any exponent in [0, 2^256); exercise the order edges explicitly.
    order = modulus - 1
    return st.integers(min_value=0, max_value=2**256 - 1) | st.sampled_from(
        [0, 1, order - 1, order, order + 1]
    )


# -- differential fuzzers ----------------------------------------------------


@needs_native
class TestChaChaDifferential:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(keys_st, nonces_st, counters_st), min_size=0, max_size=20)
    )
    def test_blocks_match_reference(self, items):
        kernels.set_active_kernel("native")
        keys = [k for k, _, _ in items]
        nonces = [n for _, n, _ in items]
        counters = [c for _, _, c in items]
        native = kernels.chacha20_blocks(keys, nonces, counters)
        reference = b"".join(
            chacha20_block(k, c, n) for k, n, c in zip(keys, nonces, counters)
        )
        assert native == reference

    def test_single_block(self):
        kernels.set_active_kernel("native")
        native = kernels.chacha20_blocks([b"\x01" * 32], [b"\x02" * 12], [2**32 - 1])
        assert native == chacha20_block(b"\x01" * 32, 2**32 - 1, b"\x02" * 12)

    def test_empty_batch(self):
        kernels.set_active_kernel("native")
        assert kernels.chacha20_blocks([], [], []) == b""

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(keys_st, nonces_st, counters_st), min_size=1, max_size=40))
    def test_batch_entry_point_is_tier_invariant(self, items):
        """The public ``chacha20_blocks_batch`` is bit-identical across tiers."""
        keys = [k for k, _, _ in items]
        nonces = [n for _, n, _ in items]
        counters = [c for _, _, c in items]
        outputs = []
        for tier in ("python", "numpy", "native"):
            kernels.set_active_kernel(tier)
            outputs.append(chacha20.chacha20_blocks_batch(keys, nonces, counters))
        assert outputs[0] == outputs[1] == outputs[2]


@needs_native
class TestAeadDifferential:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(keys_st, nonces_st, st.binary(min_size=0, max_size=200)),
            min_size=0,
            max_size=12,
        ),
        st.binary(min_size=0, max_size=40),
    )
    def test_seal_matches_reference(self, items, aad):
        kernels.set_active_kernel("native")
        keys = [k for k, _, _ in items]
        nonces = [n for _, n, _ in items]
        plains = [p for _, _, p in items]
        native = kernels.aead_seal_batch(keys, nonces, plains, aad)
        reference = [aenc(k, n, p, aad) for k, n, p in zip(keys, nonces, plains)]
        assert native == reference

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(keys_st, nonces_st, st.binary(min_size=0, max_size=200)),
            min_size=1,
            max_size=12,
        ),
        st.binary(min_size=0, max_size=40),
        st.data(),
    )
    def test_open_matches_reference_with_forgeries(self, items, aad, data):
        kernels.set_active_kernel("native")
        keys = [k for k, _, _ in items]
        nonces = [n for _, n, _ in items]
        sealed = [aenc(k, n, p, aad) for k, n, p in items]
        # Corrupt a random subset: bit-flips (in ciphertext or tag) and
        # truncations below one tag — every one must come back (False, None).
        for index in range(len(sealed)):
            action = data.draw(
                st.sampled_from(["keep", "flip", "truncate"]), label=f"action[{index}]"
            )
            if action == "flip":
                pos = data.draw(
                    st.integers(0, len(sealed[index]) - 1), label=f"pos[{index}]"
                )
                corrupted = bytearray(sealed[index])
                corrupted[pos] ^= 0x01
                sealed[index] = bytes(corrupted)
            elif action == "truncate":
                sealed[index] = sealed[index][: data.draw(st.integers(0, 15))]
        native = kernels.aead_open_batch(keys, nonces, sealed, aad)
        reference = [adec(k, n, d, aad) for k, n, d in zip(keys, nonces, sealed)]
        assert native == reference

    def test_wrong_key_rejected(self):
        kernels.set_active_kernel("native")
        sealed = aenc(b"\x01" * 32, b"\x00" * 12, b"secret", b"")
        [(ok, plain)] = kernels.aead_open_batch(
            [b"\x02" * 32], [b"\x00" * 12], [sealed], b""
        )
        assert (ok, plain) == (False, None)

    def test_empty_batches(self):
        kernels.set_active_kernel("native")
        assert kernels.aead_seal_batch([], [], [], b"") == []
        assert kernels.aead_open_batch([], [], [], b"") == []


@needs_native
class TestModPDifferential:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(MODULI), st.data())
    def test_scalar_mult_batch(self, modulus, data):
        kernels.set_active_kernel("native")
        elements = data.draw(_elements_st(modulus), label="elements")
        exponent = data.draw(_exponent_st(modulus), label="exponent")
        native = kernels.modp_scalar_mult_batch(modulus, elements, exponent)
        assert native == [pow(e, exponent, modulus) for e in elements]

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(MODULI), st.data())
    def test_fixed_mult_batch(self, modulus, data):
        kernels.set_active_kernel("native")
        element = data.draw(
            st.integers(min_value=0, max_value=modulus - 1), label="element"
        )
        exponents = data.draw(
            st.lists(_exponent_st(modulus), min_size=0, max_size=12), label="exponents"
        )
        native = kernels.modp_fixed_mult_batch(modulus, element, exponents)
        assert native == [pow(element, x, modulus) for x in exponents]

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(MODULI), st.data())
    def test_multi_scalar_accumulate(self, modulus, data):
        kernels.set_active_kernel("native")
        elements = data.draw(_elements_st(modulus), label="elements")
        exponents = data.draw(
            st.lists(_exponent_st(modulus), min_size=len(elements), max_size=len(elements)),
            label="exponents",
        )
        native = kernels.modp_multi_scalar_accumulate(modulus, elements, exponents)
        expected = 1
        for e, x in zip(elements, exponents):
            expected = expected * pow(e, x, modulus) % modulus
        assert native == expected

    def test_single_element_batches(self):
        kernels.set_active_kernel("native")
        p = 2**127 - 1
        assert kernels.modp_scalar_mult_batch(p, [5], 3) == [125]
        assert kernels.modp_fixed_mult_batch(p, 5, [3]) == [125]
        assert kernels.modp_multi_scalar_accumulate(p, [5], [3]) == 125

    def test_declines_wide_or_even_modulus(self):
        kernels.set_active_kernel("native")
        assert kernels.modp_scalar_mult_batch(2**300 + 1, [2], 2) is None
        assert kernels.modp_scalar_mult_batch(2**64, [2], 2) is None

    def test_declines_out_of_range_element(self):
        # An element at/above the modulus never reaches the Montgomery
        # domain: the kernel rejects it and the wrapper falls back.
        kernels.set_active_kernel("native")
        p = 2**61 - 1
        assert kernels.modp_scalar_mult_batch(p, [p], 3) is None
        assert kernels.modp_scalar_mult_batch(p, [-1], 3) is None


# -- tier selection machinery ------------------------------------------------


class TestTierSelection:
    def test_best_available_resolution(self):
        resolved = kernels.active_kernel()
        if NATIVE:
            assert resolved is CryptoKernelKind.NATIVE
        else:
            assert resolved in (CryptoKernelKind.NUMPY, CryptoKernelKind.PYTHON)

    def test_set_active_kernel_round_trip(self):
        assert kernels.set_active_kernel("python") is CryptoKernelKind.PYTHON
        assert kernels.active_kernel() is CryptoKernelKind.PYTHON
        assert not kernels.native_enabled()
        assert not kernels.numpy_enabled()

    def test_none_restores_lazy_resolution(self):
        kernels.set_active_kernel("python")
        assert kernels.set_active_kernel(None) is kernels.active_kernel()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("XRD_CRYPTO_KERNEL", "python")
        kernels.reset_kernel_for_tests()
        assert kernels.active_kernel() is CryptoKernelKind.PYTHON

    def test_env_invalid_value_raises(self, monkeypatch):
        monkeypatch.setenv("XRD_CRYPTO_KERNEL", "turbo")
        kernels.reset_kernel_for_tests()
        with pytest.raises(ConfigurationError):
            kernels.active_kernel()

    def test_registry_factories_select_tier(self):
        assert CRYPTO_KERNELS.create(CryptoKernelKind.PYTHON) is CryptoKernelKind.PYTHON
        assert kernels.active_kernel() is CryptoKernelKind.PYTHON

    def test_wrappers_return_none_on_python_tier(self):
        kernels.set_active_kernel("python")
        assert kernels.chacha20_blocks([b"\x00" * 32], [b"\x00" * 12], [0]) is None
        assert kernels.aead_seal_batch([b"\x00" * 32], [b"\x00" * 12], [b""], b"") is None
        assert kernels.aead_open_batch([b"\x00" * 32], [b"\x00" * 12], [b""], b"") is None
        assert kernels.modp_scalar_mult_batch(2**61 - 1, [2], 2) is None

    @needs_native
    def test_numpy_tier_does_not_call_native(self):
        kernels.set_active_kernel("numpy")
        assert kernels.chacha20_blocks([b"\x00" * 32], [b"\x00" * 12], [0]) is None

    def test_downgrade_warns_once_when_unavailable(self, monkeypatch):
        from repro import native

        monkeypatch.setenv("XRD_NATIVE_DISABLE", "1")
        native.reset_probe_for_tests()
        try:
            assert not kernels.native_available()
            with pytest.warns(RuntimeWarning, match="falling back"):
                resolved = kernels.set_active_kernel("native")
            assert resolved is not CryptoKernelKind.NATIVE
            # The warning fires once per process, not once per call.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                kernels.reset_kernel_for_tests()
                kernels._warned_downgrade = True
                kernels.set_active_kernel("native")
        finally:
            monkeypatch.delenv("XRD_NATIVE_DISABLE")
            native.reset_probe_for_tests()

    def test_loader_negative_probe_is_cached(self, monkeypatch):
        from repro import native

        monkeypatch.setenv("XRD_NATIVE_DISABLE", "1")
        native.reset_probe_for_tests()
        try:
            assert native.load() is None
            assert native.load_error() is not None
            monkeypatch.delenv("XRD_NATIVE_DISABLE")
            # Still None without a re-probe: the result is cached.
            assert native.load() is None
        finally:
            native.reset_probe_for_tests()

    @needs_native
    def test_loader_reports_abi(self):
        from repro import native

        ffi, lib = native.load()
        assert lib.xrd_abi_version() == native.EXPECTED_ABI


class TestDeploymentKnob:
    def test_config_accepts_kind(self):
        from repro.coordinator.network import DeploymentConfig

        config = DeploymentConfig(crypto_kernel=CryptoKernelKind.PYTHON)
        config.validate()
        assert config.crypto_kernel is CryptoKernelKind.PYTHON

    def test_config_coerces_plain_string_with_deprecation(self):
        from repro.coordinator.network import DeploymentConfig

        with pytest.warns(DeprecationWarning):
            config = DeploymentConfig(crypto_kernel="python")
        assert config.crypto_kernel is CryptoKernelKind.PYTHON

    def test_config_rejects_unknown_kernel(self):
        from repro.coordinator.network import DeploymentConfig

        config = DeploymentConfig(crypto_kernel="quantum")
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_create_selects_tier(self):
        from repro.coordinator.network import Deployment, DeploymentConfig

        config = DeploymentConfig(
            num_servers=2, num_users=2, seed=1, group_kind="modp",
            crypto_kernel=CryptoKernelKind.PYTHON,
        )
        deployment = Deployment.create(config)
        try:
            assert kernels.active_kernel() is CryptoKernelKind.PYTHON
        finally:
            deployment.close()


# -- error-message satellites ------------------------------------------------


class TestLengthMismatchMessages:
    def test_chacha_batch_reports_all_three_lengths(self):
        with pytest.raises(CryptoError, match=r"2 keys, 1 nonces, 3 counters"):
            chacha20.chacha20_blocks_batch(
                [b"\x00" * 32] * 2, [b"\x00" * 12], [0, 1, 2]
            )

    def test_aenc_batch_reports_lengths(self):
        with pytest.raises(CryptoError, match=r"3 keys, 2 plaintexts"):
            aead.aenc_batch([b"\x00" * 32] * 3, 1, [b"a", b"b"])

    def test_adec_batch_reports_lengths(self):
        with pytest.raises(CryptoError, match=r"1 keys, 2 ciphertexts"):
            aead.adec_batch([b"\x00" * 32], 1, [b"a" * 16, b"b" * 16])


# -- window-table cache satellite --------------------------------------------


class TestWindowTableCache:
    @pytest.fixture(autouse=True)
    def _clean_caches(self):
        reset_window_table_caches()
        yield
        reset_window_table_caches()

    def test_decoded_copies_share_one_table(self):
        group = Ed25519Group()
        encoded = group.encode(group.base_mult(7))
        first = group.decode(encoded)
        second = group.decode(encoded)
        assert first is not second
        group_mod._window_table(first)   # probation
        table = group_mod._window_table(first)  # promoted
        assert group_mod._window_table(second) is table

    def test_unencoded_point_promoted_on_second_sighting(self):
        group = Ed25519Group()
        point = group.base_mult(11)  # never encoded: no _enc memo yet
        assert "_enc" not in point.__dict__
        group_mod._window_table(point)
        group_mod._window_table(point)
        # Promotion computed the encoding and parked the table durably.
        assert point.__dict__["_enc"] in group_mod._WINDOW_TABLE_BY_ENCODING

    def test_reset_clears_everything_but_base(self):
        group = Ed25519Group()
        point = group.decode(group.encode(group.base_mult(13)))
        group_mod._window_table(point)
        group_mod._window_table(point)
        assert group_mod._WINDOW_TABLE_BY_ENCODING
        base_table = group_mod._window_table(group.base())
        reset_window_table_caches()
        assert not group_mod._WINDOW_TABLE_BY_ENCODING
        assert not group_mod._ENCODING_SEEN_ONCE
        assert not group_mod._WINDOW_TABLE_CACHE
        assert not group_mod._WINDOW_SEEN_ONCE
        assert group_mod._window_table(group.base()) is base_table

    def test_cache_is_bounded(self):
        group = Ed25519Group()
        for scalar in range(2, 2 + group_mod._WINDOW_TABLE_CACHE_LIMIT + 8):
            point = group.decode(group.encode(group.base_mult(scalar)))
            group_mod._window_table(point)
            group_mod._window_table(point)
        assert (
            len(group_mod._WINDOW_TABLE_BY_ENCODING)
            <= group_mod._WINDOW_TABLE_CACHE_LIMIT
        )
