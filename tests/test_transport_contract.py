"""The shared :class:`~repro.transport.base.Transport` contract suite.

Every transport the registry can produce — and every wrapper — must honour
the same capability surface: ``deliver`` returns the payload as the
destination observed it, ``deliver_many`` is semantically the per-envelope
loop, ``close`` is idempotent, the context-manager protocol closes, and
``fork_safe`` truthfully reports whether the instance survives ``fork``.
The suite runs identically over inproc, instrumented, faulty(inproc), and
the TCP loopback reflector, so a new transport only needs a factory row
here to prove itself.
"""

import abc

import pytest

from repro.transport import (
    SUBMISSION,
    Envelope,
    FaultyTransport,
    InProcTransport,
    InstrumentedTransport,
    Transport,
)
from repro.transport.tcp import TcpTransport

from tests.test_transport import make_submission


def _inproc(group):
    return InProcTransport()


def _instrumented(group):
    return InstrumentedTransport(group)


def _faulty(group):
    return FaultyTransport(InProcTransport(), [])


def _tcp(group):
    return TcpTransport(group, node_name="contract")


FACTORIES = {
    "inproc": _inproc,
    "instrumented": _instrumented,
    "faulty": _faulty,
    "tcp": _tcp,
}

#: The honest fork-safety surface: an event-loop thread and live sockets do
#: not survive fork; everything in-process does.  A wrapper mirrors what it
#: wraps (see TestForkSafety for the faulty-over-tcp case).
EXPECTED_FORK_SAFE = {
    "inproc": True,
    "instrumented": True,
    "faulty": True,
    "tcp": False,
}


@pytest.fixture(params=sorted(FACTORIES))
def transport(request, group):
    instance = FACTORIES[request.param](group)
    yield instance
    instance.close()


def submission_envelope(group, sender="alice"):
    submission = make_submission(group, chain_id=1, sender=sender)
    return (
        submission,
        Envelope(
            kind=SUBMISSION,
            source=sender,
            destination="server-0",
            round_number=1,
            payload=submission,
        ),
    )


class TestTransportContract:
    def test_is_a_transport(self, transport):
        assert isinstance(transport, Transport)
        assert transport.name in FACTORIES

    def test_deliver_returns_the_observed_payload(self, transport, group):
        submission, envelope = submission_envelope(group)
        assert transport.deliver(envelope) == submission

    def test_deliver_many_matches_the_per_envelope_loop(self, transport, group):
        pairs = [submission_envelope(group, sender=f"user-{i}") for i in range(3)]
        batch = transport.deliver_many([envelope for _, envelope in pairs])
        assert batch == [submission for submission, _ in pairs]

    def test_close_is_idempotent(self, transport):
        transport.close()
        transport.close()  # must not raise

    def test_context_manager_closes(self, group, request):
        # A fresh instance per factory: the fixture instance must stay open
        # for the other tests' sake.
        for factory in FACTORIES.values():
            with factory(group) as instance:
                assert isinstance(instance, Transport)
            instance.close()  # idempotent even after __exit__

    def test_fork_safety_flags(self, transport):
        assert transport.fork_safe == EXPECTED_FORK_SAFE[transport.name]


class TestForkSafety:
    def test_wrapper_mirrors_inner_flag(self, group):
        with TcpTransport(group, node_name="wrapped") as tcp:
            assert FaultyTransport(tcp, []).fork_safe is False
        assert FaultyTransport(InProcTransport(), []).fork_safe is True


class TestAbstractBase:
    def test_cannot_instantiate_without_deliver(self):
        with pytest.raises(TypeError):
            Transport()

    def test_minimal_subclass_gets_the_defaults(self, group):
        class Recorder(Transport):
            name = "recorder"

            def __init__(self):
                self.seen = []

            def deliver(self, envelope):
                self.seen.append(envelope)
                return envelope.payload

        recorder = Recorder()
        _, envelope = submission_envelope(group)
        assert recorder.deliver_many([envelope, envelope]) == [
            envelope.payload,
            envelope.payload,
        ]
        assert len(recorder.seen) == 2
        assert recorder.fork_safe is True
        recorder.close()
        with recorder as entered:
            assert entered is recorder

    def test_deliver_is_abstract(self):
        assert getattr(Transport.deliver, "__isabstractmethod__", False)
        assert isinstance(Transport, abc.ABCMeta)
