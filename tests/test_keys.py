"""Tests for key pairs and the key directory (PKI stand-in)."""

import pytest

from repro.crypto.keys import KeyDirectory, KeyPair, random_bytes
from repro.errors import ConfigurationError


class TestKeyPair:
    def test_generate_consistency(self, group):
        keypair = KeyPair.generate(group)
        assert keypair.public == group.base_mult(keypair.secret)
        assert keypair.public_bytes == group.encode(keypair.public)

    def test_from_secret_roundtrip(self, group):
        keypair = KeyPair.generate(group)
        rebuilt = KeyPair.from_secret(keypair.secret, group)
        assert rebuilt.public_bytes == keypair.public_bytes

    def test_from_secret_reduces_modulo_order(self, group):
        keypair = KeyPair.from_secret(group.order + 5, group)
        assert keypair.secret == 5

    def test_from_secret_rejects_zero(self, group):
        with pytest.raises(ConfigurationError):
            KeyPair.from_secret(group.order, group)

    def test_deterministic_with_seeded_rng(self, group, rng):
        import random

        first = KeyPair.generate(group, random.Random(9))
        second = KeyPair.generate(group, random.Random(9))
        assert first.public_bytes == second.public_bytes

    def test_distinct_keypairs(self, group):
        assert KeyPair.generate(group).public_bytes != KeyPair.generate(group).public_bytes

    def test_identity_secret_bytes(self, group):
        assert len(KeyPair.generate(group).identity_secret_bytes()) == 32

    def test_default_group_is_ed25519(self):
        keypair = KeyPair.generate()
        assert len(keypair.public_bytes) == 32


class TestKeyDirectory:
    def test_register_and_lookup(self, group):
        directory = KeyDirectory(group=group)
        directory.register_user("alice", b"\x01" * 32)
        directory.register_server("server-0", b"\x02" * 32)
        assert directory.user_public_key("alice") == b"\x01" * 32
        assert directory.server_public_key("server-0") == b"\x02" * 32
        assert "alice" in directory
        assert "server-0" in directory
        assert len(directory) == 2

    def test_unknown_lookups_raise(self, group):
        directory = KeyDirectory(group=group)
        with pytest.raises(ConfigurationError):
            directory.user_public_key("nobody")
        with pytest.raises(ConfigurationError):
            directory.server_public_key("nobody")

    def test_registration_order_preserved(self, group):
        directory = KeyDirectory(group=group)
        for index in range(5):
            directory.register_user(f"user-{index}", bytes([index]) * 32)
        assert directory.users() == [f"user-{index}" for index in range(5)]

    def test_reregistration_overwrites(self, group):
        directory = KeyDirectory(group=group)
        directory.register_user("alice", b"\x01" * 32)
        directory.register_user("alice", b"\x03" * 32)
        assert directory.user_public_key("alice") == b"\x03" * 32
        assert len(directory.users()) == 1

    def test_random_bytes_helper(self):
        assert len(random_bytes(16)) == 16
        assert random_bytes(16) != random_bytes(16)
