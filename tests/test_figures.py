"""Tests for the figure generators and the text report renderer."""

import pytest

from repro.analysis import figures, render_figure, render_table
from repro.analysis.report import format_value


class TestFigureStructure:
    @pytest.mark.parametrize("name", sorted(figures.ALL_FIGURES))
    def test_every_figure_has_consistent_series(self, name):
        figure = figures.ALL_FIGURES[name]()
        assert figure["id"] == name
        assert len(figure["x"]) > 0
        for series_name, values in figure["series"].items():
            assert len(values) == len(figure["x"]), series_name

    def test_registry_covers_all_evaluation_figures(self):
        expected = {f"fig{i}" for i in range(2, 9)} | {"fig7_recovery"}
        assert set(figures.ALL_FIGURES) == expected


class TestFigureShapes:
    def test_fig2_xrd_grows_pung_flat(self):
        figure = figures.figure2()
        xrd = figure["series"]["XRD"]
        pung = figure["series"]["Pung (XPIR; 1M users)"]
        assert xrd[-1] > xrd[0]
        assert pung[0] == pung[-1]
        assert pung[0] > xrd[-1]  # Pung XPIR costs users far more than XRD

    def test_fig3_xrd_compute_below_half_second(self):
        figure = figures.figure3()
        assert max(figure["series"]["XRD"]) < 0.6

    def test_fig4_orderings(self):
        figure = figures.figure4()
        for index in range(len(figure["x"])):
            assert figure["series"]["Atom"][index] > figure["series"]["XRD"][index]
            assert figure["series"]["Pung"][index] > figure["series"]["XRD"][index]
            assert figure["series"]["Stadium"][index] < figure["series"]["XRD"][index]

    def test_fig5_xrd_decreasing_in_servers(self):
        figure = figures.figure5()
        xrd = figure["series"]["XRD"]
        assert all(later <= earlier for earlier, later in zip(xrd, xrd[1:]))

    def test_fig5_crossover_with_pung(self):
        """Pung overtakes XRD somewhere around a thousand servers (§8.2)."""
        figure = figures.figure5(server_counts=(100, 1000, 3000))
        xrd = figure["series"]["XRD"]
        pung = figure["series"]["Pung"]
        assert pung[0] > xrd[0]
        assert pung[-1] < xrd[-1]

    def test_fig6_monotone_in_f(self):
        figure = figures.figure6()
        latencies = figure["series"]["XRD latency"]
        assert latencies == sorted(latencies)

    def test_fig7_linear_in_malicious_users(self):
        figure = figures.figure7()
        latencies = figure["series"]["blame latency"]
        assert latencies == sorted(latencies)
        assert latencies[-1] > 5 * latencies[0]

    def test_fig8_anchors(self):
        figure = figures.figure8()
        series = figure["series"]["XRD (100 servers)"]
        one_percent = series[figure["x"].index(0.01)]
        four_percent = series[figure["x"].index(0.04)]
        assert one_percent == pytest.approx(0.27, abs=0.03)
        assert four_percent == pytest.approx(0.72, abs=0.05)

    def test_fig8_monte_carlo_series(self):
        figure = figures.figure8(
            churn_rates=(0.0, 0.02), server_counts=(30,), monte_carlo=True, trials=2,
            conversations_per_trial=30,
        )
        assert "XRD (30 servers, MC)" in figure["series"]

    def test_headline_comparison(self):
        headline = figures.headline_comparison()
        assert headline["atom_speedup"] == pytest.approx(12, rel=0.15)
        assert headline["pung_speedup"] == pytest.approx(3.7, rel=0.15)
        assert 1.5 < headline["stadium_slowdown"] < 3.0

    def test_user_cost_table(self):
        table = figures.user_cost_table()
        rows = {row["servers"]: row for row in table["rows"]}
        assert rows[100]["upload_kb"] < rows[2000]["upload_kb"]
        assert rows[2000]["kbps_1min_rounds"] < 60


class TestRendering:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_render_figure(self):
        text = render_figure(figures.figure7())
        assert "Figure 7" in text
        assert "blame latency" in text

    def test_format_value(self):
        assert format_value(0) == "0"
        assert format_value(12345.6) == "12,346"
        assert format_value(12.34) == "12.3"
        assert format_value(0.5) == "0.500"
        assert format_value(1e-6) == "1e-06"
        assert format_value("text") == "text"
