"""Tests for anytrust chain formation, the chain-length formula, and staggering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.randomness import PublicRandomnessBeacon
from repro.errors import ConfigurationError
from repro.mixnet.chain import (
    chain_compromise_probability,
    form_chains,
    position_histogram,
    required_chain_length,
    server_load,
    stagger_positions,
    ChainTopology,
)


class TestChainLengthFormula:
    def test_paper_example(self):
        """§5.2.1: f = 0.2, 2^-64 target, n < 6000 → k ≈ 32-33."""
        assert required_chain_length(0.2, 6000, 64) in (32, 33, 34)

    def test_hundred_chains(self):
        assert 30 <= required_chain_length(0.2, 100, 64) <= 32

    def test_zero_malicious_fraction(self):
        assert required_chain_length(0.0, 100, 64) == 1

    def test_monotone_in_fraction(self):
        lengths = [required_chain_length(f, 100, 64) for f in (0.1, 0.2, 0.3, 0.4)]
        assert lengths == sorted(lengths)
        assert lengths[0] < lengths[-1]

    def test_logarithmic_in_chains(self):
        small = required_chain_length(0.2, 10, 64)
        large = required_chain_length(0.2, 10000, 64)
        assert large - small <= 5  # grows only logarithmically with n

    def test_security_parameter_satisfied(self):
        for fraction in (0.1, 0.2, 0.3):
            for num_chains in (10, 100, 1000):
                length = required_chain_length(fraction, num_chains, 64)
                assert chain_compromise_probability(fraction, length, num_chains) <= 2**-64

    def test_minimality(self):
        length = required_chain_length(0.2, 100, 64)
        assert chain_compromise_probability(0.2, length - 1, 100) > 2**-64

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            required_chain_length(1.0, 100)
        with pytest.raises(ConfigurationError):
            required_chain_length(0.2, 0)
        with pytest.raises(ConfigurationError):
            required_chain_length(0.2, 100, -1)
        with pytest.raises(ConfigurationError):
            chain_compromise_probability(-0.1, 3, 5)
        with pytest.raises(ConfigurationError):
            chain_compromise_probability(0.1, 0, 5)

    @given(
        st.floats(min_value=0.01, max_value=0.9),
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=8, max_value=80),
    )
    @settings(max_examples=50)
    def test_formula_always_meets_target(self, fraction, num_chains, security_bits):
        length = required_chain_length(fraction, num_chains, security_bits)
        assert chain_compromise_probability(fraction, length, num_chains) <= 2**-security_bits


class TestFormChains:
    def _servers(self, count):
        return [f"server-{index}" for index in range(count)]

    def test_shape(self):
        chains = form_chains(self._servers(10), num_chains=10, chain_length=3)
        assert len(chains) == 10
        assert all(len(chain) == 3 for chain in chains)
        assert [chain.chain_id for chain in chains] == list(range(10))

    def test_no_duplicate_server_within_chain(self):
        chains = form_chains(self._servers(10), num_chains=20, chain_length=5)
        for chain in chains:
            assert len(set(chain.servers)) == len(chain.servers)

    def test_deterministic_from_beacon(self):
        beacon = PublicRandomnessBeacon(seed=b"epoch-test")
        one = form_chains(self._servers(8), 8, 3, beacon=beacon, epoch=4)
        two = form_chains(self._servers(8), 8, 3, beacon=beacon, epoch=4)
        assert [chain.servers for chain in one] == [chain.servers for chain in two]

    def test_different_epochs_differ(self):
        beacon = PublicRandomnessBeacon(seed=b"epoch-test")
        one = form_chains(self._servers(8), 8, 3, beacon=beacon, epoch=1)
        two = form_chains(self._servers(8), 8, 3, beacon=beacon, epoch=2)
        assert [chain.servers for chain in one] != [chain.servers for chain in two]

    def test_chain_length_cannot_exceed_servers(self):
        with pytest.raises(ConfigurationError):
            form_chains(self._servers(3), 2, 4)

    def test_duplicate_server_names_rejected(self):
        with pytest.raises(ConfigurationError):
            form_chains(["a", "a", "b"], 2, 2)

    def test_invalid_chain_count(self):
        with pytest.raises(ConfigurationError):
            form_chains(self._servers(4), 0, 2)

    def test_load_roughly_balanced(self):
        """With n = N each server should appear in about k chains (§5.2.1)."""
        chains = form_chains(self._servers(20), num_chains=20, chain_length=5)
        load = server_load(chains)
        total = sum(load.values())
        assert total == 20 * 5
        assert max(load.values()) <= 3 * 5  # no server is pathologically overloaded

    def test_topology_helpers(self):
        topology = ChainTopology(chain_id=1, servers=["a", "b", "c"])
        assert len(topology) == 3
        assert topology.position_of("b") == 1
        assert "c" in topology
        assert "z" not in topology


class TestStaggering:
    def test_staggering_preserves_membership(self):
        servers = [f"server-{index}" for index in range(6)]
        chains = form_chains(servers, 6, 3, stagger=False)
        staggered = stagger_positions(chains)
        for before, after in zip(chains, staggered):
            assert sorted(before.servers) == sorted(after.servers)

    def test_staggering_spreads_positions(self):
        """A server in many chains should not always sit at the same position."""
        servers = [f"server-{index}" for index in range(5)]
        chains = form_chains(servers, 15, 3, stagger=True)
        histogram = position_histogram(chains)
        for _server, counts in histogram.items():
            appearances = sum(counts)
            if appearances >= 3:
                assert max(counts) < appearances  # not always the same slot

    def test_stagger_empty_input(self):
        assert stagger_positions([]) == []

    def test_position_histogram_empty(self):
        assert position_histogram([]) == {}
