"""The TCP transport: frame grammar fuzzing and live-socket behaviour.

Three layers, cheapest first: hypothesis round-trip and truncation fuzzing
of the frame/handshake codecs (pure functions, no sockets), single-process
loopback tests against a live listener (real sockets, one interpreter),
and one ``distributed``-marked test that talks to an actual
``python -m repro.runner --role mix`` subprocess over the management and
data planes.
"""

import json
import os
import subprocess
import sys
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.coordinator.network import Deployment, DeploymentConfig
from repro.errors import DecodingError, TransportError
from repro.runner import protocol
from repro.runner.harness import READY_PREFIX
from repro.transport import frames
from repro.transport.envelope import SUBMISSION, Envelope
from repro.transport.faulty import DROP, FaultyTransport, LinkFault
from repro.transport.tcp import TcpTransport

from tests.test_transport import make_submission

request_ids = st.integers(min_value=0, max_value=2**64 - 1)


def all_proper_prefixes_fail(decoder, data):
    for cut in range(len(data)):
        with pytest.raises(DecodingError):
            decoder(data[:cut])


class TestFrameCodec:
    @settings(max_examples=50, deadline=None)
    @given(
        frame_type=st.sampled_from(frames.FRAME_TYPES),
        request_id=request_ids,
        body=st.binary(max_size=256),
    )
    def test_round_trip(self, frame_type, request_id, body):
        wire = frames.encode_frame(frame_type, request_id, body)
        assert frames.decode_frame(wire) == (frame_type, request_id, body)

    @settings(max_examples=25, deadline=None)
    @given(request_id=request_ids, body=st.binary(max_size=64))
    def test_every_truncation_is_rejected(self, request_id, body):
        wire = frames.encode_frame(frames.FRAME_ENVELOPE, request_id, body)
        all_proper_prefixes_fail(frames.decode_frame, wire)

    def test_trailing_bytes_are_rejected(self):
        wire = frames.encode_frame(frames.FRAME_REPLY, 7, b"body")
        with pytest.raises(DecodingError, match="trailing"):
            frames.decode_frame(wire + b"\x00")

    def test_unknown_frame_type_is_rejected_both_ways(self):
        with pytest.raises(DecodingError, match="unknown frame type"):
            frames.encode_frame(99, 1, b"")
        wire = bytearray(frames.encode_frame(frames.FRAME_HELLO, 1, b""))
        wire[4] = 99  # frame type byte, just past the length prefix
        with pytest.raises(DecodingError, match="unknown frame type"):
            frames.decode_frame(bytes(wire))

    def test_every_opcode_round_trips_at_its_pinned_wire_value(self):
        # Renumbering an opcode is a silent wire break: peers on the old
        # numbering parse the frame as a different type.  Pin each value
        # and round-trip each opcode explicitly.
        pinned = {
            frames.FRAME_HELLO: 1,
            frames.FRAME_HELLO_ACK: 2,
            frames.FRAME_ENVELOPE: 3,
            frames.FRAME_REPLY: 4,
            frames.FRAME_CONTROL: 5,
            frames.FRAME_ERROR: 6,
        }
        assert set(frames.FRAME_TYPES) == set(pinned)
        for opcode, value in pinned.items():
            assert opcode == value
            wire = frames.encode_frame(opcode, 42, b"payload")
            assert wire[4] == value  # opcode byte sits just past the length prefix
            assert frames.decode_frame(wire) == (opcode, 42, b"payload")


class TestHelloCodec:
    @settings(max_examples=50, deadline=None)
    @given(
        node=st.text(max_size=32),
        group_kind=st.text(max_size=32),
        digest=st.binary(max_size=48),
    )
    def test_round_trip(self, node, group_kind, digest):
        hello = frames.Hello(node=node, group_kind=group_kind, config_digest=digest)
        assert frames.decode_hello(frames.encode_hello(hello)) == hello

    @settings(max_examples=25, deadline=None)
    @given(node=st.text(max_size=16), digest=st.binary(max_size=32))
    def test_every_truncation_is_rejected(self, node, digest):
        wire = frames.encode_hello(
            frames.Hello(node=node, group_kind="ModPGroup", config_digest=digest)
        )
        all_proper_prefixes_fail(frames.decode_hello, wire)

    def test_bad_magic_is_rejected(self):
        wire = frames.encode_hello(frames.Hello("n", "g", b""))
        with pytest.raises(DecodingError, match="magic"):
            frames.decode_hello(b"NOPE" + wire[4:])

    def test_version_mismatch_is_rejected(self):
        wire = bytearray(frames.encode_hello(frames.Hello("n", "g", b"")))
        wire[4:6] = (frames.PROTOCOL_VERSION + 1).to_bytes(2, "big")
        with pytest.raises(DecodingError, match="version mismatch"):
            frames.decode_hello(bytes(wire))


class TestEnvelopeFrameCodec:
    def test_round_trip_with_optional_fields(self, group):
        submission = make_submission(group, chain_id=2, sender="user-1")
        for chain_id, part in [(None, None), (2, None), (2, 3)]:
            envelope = Envelope(
                kind=SUBMISSION,
                source="user-1",
                destination="server-0",
                round_number=11,
                payload=submission,
                chain_id=chain_id,
                part=part,
            )
            wire = frames.encode_envelope_frame(group, envelope)
            assert frames.decode_envelope_frame(group, wire) == envelope

    def test_every_truncation_is_rejected(self, group):
        envelope = Envelope(
            kind=SUBMISSION,
            source="user-1",
            destination="server-0",
            round_number=11,
            payload=make_submission(group),
            chain_id=1,
            part=0,
        )
        wire = frames.encode_envelope_frame(group, envelope)
        all_proper_prefixes_fail(
            lambda data: frames.decode_envelope_frame(group, data), wire
        )

    def test_trailing_bytes_are_rejected(self, group):
        envelope = Envelope(
            kind=SUBMISSION,
            source="u",
            destination="s",
            round_number=1,
            payload=make_submission(group),
        )
        wire = frames.encode_envelope_frame(group, envelope)
        with pytest.raises(DecodingError, match="trailing"):
            frames.decode_envelope_frame(group, wire + b"\x00")

    def test_unknown_kind_is_rejected(self, group):
        envelope = Envelope(
            kind=SUBMISSION,
            source="u",
            destination="s",
            round_number=1,
            payload=make_submission(group),
        )
        wire = frames.encode_envelope_frame(group, envelope)
        # Splice in an unknown kind string of the same length.
        assert SUBMISSION.encode() in wire
        broken = wire.replace(SUBMISSION.encode(), b"x" * len(SUBMISSION.encode()), 1)
        with pytest.raises(DecodingError, match="unknown envelope kind"):
            frames.decode_envelope_frame(group, broken)


class TestErrorCodec:
    @settings(max_examples=25, deadline=None)
    @given(message=st.text(max_size=128))
    def test_round_trip(self, message):
        assert frames.decode_error(frames.encode_error(message)) == message

    def test_trailing_bytes_are_rejected(self):
        with pytest.raises(DecodingError, match="trailing"):
            frames.decode_error(frames.encode_error("boom") + b"\x00")


@pytest.fixture
def tcp(group):
    transport = TcpTransport(group, node_name="loopback")
    yield transport
    transport.close()


def submission_envelope(group, sender="alice"):
    submission = make_submission(group, chain_id=1, sender=sender)
    envelope = Envelope(
        kind=SUBMISSION,
        source=sender,
        destination="server-0",
        round_number=1,
        payload=submission,
    )
    return submission, envelope


class TestLoopback:
    def test_deliver_reflects_through_a_real_socket(self, tcp, group):
        submission, envelope = submission_envelope(group)
        assert tcp.deliver(envelope) == submission

    def test_deliver_many_is_pipelined_and_ordered(self, tcp, group):
        pairs = [submission_envelope(group, sender=f"user-{i}") for i in range(5)]
        replies = tcp.deliver_many([envelope for _, envelope in pairs])
        assert replies == [submission for submission, _ in pairs]

    def test_handler_errors_surface_as_transport_errors(self, tcp):
        # The default reflector accepts no control messages; the error must
        # cross the socket as an ERROR frame and re-raise on the caller.
        with pytest.raises(TransportError, match="peer .* reported"):
            tcp.control(tcp.node_name, b"\x01")

    def test_faulty_wrapper_drops_over_tcp(self, tcp, group):
        faulty = FaultyTransport(tcp, [LinkFault(behaviour=DROP, kind=SUBMISSION)])
        _, envelope = submission_envelope(group)
        assert faulty.deliver(envelope) is None

    def test_request_after_close_raises(self, tcp, group):
        tcp.close()
        tcp.close()  # idempotent
        _, envelope = submission_envelope(group)
        with pytest.raises(TransportError, match="closed"):
            tcp.deliver(envelope)

    def test_unknown_peer_is_a_routing_error(self, tcp, group):
        _, envelope = submission_envelope(group)
        tcp.set_peers({}, {"server-0": "elsewhere"})
        with pytest.raises(TransportError, match="no route to peer"):
            tcp.deliver(envelope)


class TestHandshake:
    def test_group_kind_mismatch_is_rejected(self, group):
        with TcpTransport(group, node_name="server") as server, TcpTransport(
            group, node_name="client", group_kind="EllipticNope"
        ) as client:
            client.set_peers({"server": server.local_address}, {})
            with pytest.raises(TransportError, match="rejected the handshake"):
                client.control("server", b"\x01")

    def test_config_digest_mismatch_is_rejected(self, group):
        with TcpTransport(
            group, node_name="server", config_digest=b"a" * 32
        ) as server, TcpTransport(
            group, node_name="client", config_digest=b"b" * 32
        ) as client:
            client.set_peers({"server": server.local_address}, {})
            with pytest.raises(TransportError, match="rejected the handshake"):
                client.control("server", b"\x01")

    def test_digestless_probe_is_accepted(self, group):
        # An empty digest means "not asserting a config" (debug tooling);
        # only two *conflicting* non-empty digests are refused.
        submission, envelope = submission_envelope(group)
        with TcpTransport(
            group, node_name="server", config_digest=b"a" * 32
        ) as server, TcpTransport(group, node_name="probe") as probe:
            probe.set_peers({"server": server.local_address}, {"server-0": "server"})
            assert probe.deliver(envelope) == submission


@pytest.mark.distributed
class TestTwoProcesses:
    """Talk to a real ``python -m repro.runner --role mix`` child process."""

    def test_ping_deliver_and_shutdown(self):
        config = DeploymentConfig(
            num_servers=2,
            num_users=2,
            num_chains=1,
            chain_length=2,
            seed=7,
            group_kind="modp",
        )
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (package_root, env.get("PYTHONPATH")) if part
        )
        with tempfile.TemporaryDirectory(prefix="xrd-two-proc-") as workdir:
            config_path = os.path.join(workdir, "config.json")
            with open(config_path, "w") as handle:
                json.dump(protocol.config_to_dict(config), handle, sort_keys=True)
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.runner", "--role", "mix",
                 "--name", "mix-0", "--config", config_path],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            probe = None
            try:
                line = proc.stdout.readline().split()
                assert line and line[0] == READY_PREFIX, line
                address = (line[2], int(line[3]))
                # The same config builds the same group, so the handshake's
                # group-kind and config-digest checks both engage for real.
                reference = Deployment.create(config)
                probe = TcpTransport(
                    reference.group,
                    node_name="probe",
                    config_digest=protocol.config_digest(config),
                )
                probe.set_peers({"mix-0": address}, {"server-0": "mix-0"})
                assert probe.control(
                    "mix-0", protocol.encode_control(protocol.OP_PING)
                ) == b"pong"
                submission, envelope = submission_envelope(reference.group)
                assert probe.deliver(envelope) == submission
                assert probe.control(
                    "mix-0", protocol.encode_control(protocol.OP_SHUTDOWN)
                ) == b"ok"
                assert proc.wait(timeout=30) == 0
            finally:
                if probe is not None:
                    probe.close()
                if proc.poll() is None:
                    proc.kill()
                proc.stdout.close()
                proc.stderr.close()
