"""Tests for the aggregate hybrid shuffle: key ceremony, mixing, verification."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.crypto.nizk import verify_dlog
from repro.crypto.onion import encrypt_inner, encrypt_outer_layers
from repro.errors import ProofError, ProtocolError
from repro.mixnet.ahs import (
    ChainMember,
    ChainRoundResult,
    MixChain,
    setup_context,
    submission_context,
)
from repro.mixnet.messages import ClientSubmission, MailboxMessage, MessageBody
from repro.crypto.nizk import prove_dlog


def build_chain(group, length=3, chain_id=0, seed=11):
    members = [
        ChainMember(f"server-{index}", chain_id, index, group, random.Random(seed + index))
        for index in range(length)
    ]
    chain = MixChain(chain_id=chain_id, members=members, group=group)
    chain.setup()
    return chain


def make_submission(group, chain, round_number, sender, recipient_key, symmetric_key, body=None):
    """Build a well-formed AHS submission for one chain."""
    body = body or MessageBody.data(b"payload for " + sender.encode())
    mailbox_message = MailboxMessage.seal(recipient_key, symmetric_key, round_number, body)
    envelope = encrypt_inner(
        group, chain.aggregate_inner_public(round_number), round_number, mailbox_message.to_bytes()
    )
    ephemeral = group.random_scalar()
    ciphertext = encrypt_outer_layers(
        group, chain.public_keys.mixing_publics, round_number, envelope.to_bytes(), ephemeral
    )
    proof = prove_dlog(
        group, group.base(), ephemeral, submission_context(chain.chain_id, round_number, sender)
    )
    return ClientSubmission(
        chain_id=chain.chain_id,
        sender=sender,
        dh_public=group.encode(group.base_mult(ephemeral)),
        ciphertext=ciphertext,
        proof=proof,
    )


class TestKeyCeremony:
    def test_chained_key_structure(self, group):
        """bpk_i and mpk_i are both powers of bpk_{i-1}, with bpk_0 = g (§6.1)."""
        chain = build_chain(group, length=4)
        keys = chain.public_keys
        base = group.base()
        for index, member in enumerate(chain.members):
            assert keys.base_points[index] == base
            assert keys.blinding_publics[index] == group.scalar_mult(base, member.blinding_secret)
            assert keys.mixing_publics[index] == group.scalar_mult(base, member.mixing_secret)
            base = keys.blinding_publics[index]

    def test_setup_returns_all_keys(self, group):
        chain = build_chain(group, length=5)
        assert chain.public_keys.length == 5
        assert len(chain.public_keys.blinding_publics) == 5

    def test_setup_proofs_verified(self, group):
        """A member that lies about knowing its secret is caught during setup."""

        class LyingMember(ChainMember):
            def generate_long_term_keys(self, base_point):
                bundle = super().generate_long_term_keys(base_point)
                # Claim a different blinding public key than the one proven.
                return type(bundle)(
                    position=bundle.position,
                    blinding_public=self.group.scalar_mult(base_point, self.group.random_scalar()),
                    mixing_public=bundle.mixing_public,
                    blinding_proof=bundle.blinding_proof,
                    mixing_proof=bundle.mixing_proof,
                )

        members = [
            ChainMember("server-0", 0, 0, group, random.Random(1)),
            LyingMember("server-1", 0, 1, group, random.Random(2)),
        ]
        chain = MixChain(0, members, group)
        with pytest.raises(ProofError):
            chain.setup()

    def test_empty_chain_rejected(self, group):
        with pytest.raises(ProtocolError):
            MixChain(0, [], group)

    def test_user_can_derive_layer_keys(self, group):
        """The DH key a user derives for layer i equals the one server i derives (§6.3)."""
        chain = build_chain(group, length=3)
        ephemeral = group.random_scalar()
        dh_public = group.base_mult(ephemeral)
        for index, member in enumerate(chain.members):
            user_side = group.scalar_mult(chain.public_keys.mixing_publics[index], ephemeral)
            server_side = group.scalar_mult(dh_public, member.mixing_secret)
            assert user_side == server_side
            dh_public = group.scalar_mult(dh_public, member.blinding_secret)


class TestInnerKeys:
    def test_begin_round_aggregates(self, group):
        chain = build_chain(group)
        aggregate = chain.begin_round(1)
        expected = group.sum(
            group.base_mult(member.round_record(1).inner_secret) for member in chain.members
        )
        assert aggregate == expected

    def test_begin_round_proofs(self, group):
        chain = build_chain(group)
        member = chain.members[0]
        announcement = member.begin_round(7)
        assert verify_dlog(
            group,
            group.base(),
            announcement.inner_public,
            announcement.proof,
            b"xrd/inner-key|" + (0).to_bytes(4, "big") + (0).to_bytes(2, "big") + (7).to_bytes(8, "big"),
        )

    def test_aggregate_inner_requires_begin(self, group):
        chain = build_chain(group)
        with pytest.raises(ProtocolError):
            chain.aggregate_inner_public(3)

    def test_reveal_requires_begin(self, group):
        chain = build_chain(group)
        with pytest.raises(ProtocolError):
            chain.members[0].reveal_inner_secret(9)

    def test_delete_inner_secret(self, group):
        chain = build_chain(group)
        chain.begin_round(1)
        chain.members[0].delete_inner_secret(1)
        with pytest.raises(ProtocolError):
            chain.members[0].reveal_inner_secret(1)


class TestSubmissionIntake:
    def test_valid_submissions_accepted(self, group):
        chain = build_chain(group)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submission = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x01" * 32)
        entries, rejected = chain.accept_submissions(1, [submission])
        assert len(entries) == 1 and rejected == []

    def test_wrong_chain_id_rejected(self, group):
        chain = build_chain(group, chain_id=0)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submission = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x01" * 32)
        wrong = ClientSubmission(99, "alice", submission.dh_public, submission.ciphertext, submission.proof)
        _, rejected = chain.accept_submissions(1, [wrong])
        assert rejected == ["alice"]

    def test_invalid_proof_rejected(self, group):
        chain = build_chain(group)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        good = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x01" * 32)
        forged = ClientSubmission(
            chain_id=0,
            sender="mallory",
            dh_public=group.encode(group.base_mult(group.random_scalar())),
            ciphertext=good.ciphertext,
            proof=good.proof,
        )
        _, rejected = chain.accept_submissions(1, [forged])
        assert rejected == ["mallory"]

    def test_undecodable_key_rejected(self, group):
        chain = build_chain(group)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        good = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x01" * 32)
        broken = ClientSubmission(0, "mallory", b"\xff" * 32, good.ciphertext, good.proof)
        _, rejected = chain.accept_submissions(1, [broken])
        assert rejected == ["mallory"]

    def test_run_round_requires_accept(self, group):
        chain = build_chain(group)
        chain.begin_round(1)
        with pytest.raises(ProtocolError):
            chain.run_round(1)


class TestHonestMixing:
    def test_all_messages_delivered(self, group):
        chain = build_chain(group, length=3)
        chain.begin_round(1)
        recipients = [KeyPair.generate(group) for _ in range(5)]
        keys = [bytes([index + 1]) * 32 for index in range(5)]
        submissions = [
            make_submission(group, chain, 1, f"user-{index}", recipients[index].public_bytes, keys[index])
            for index in range(5)
        ]
        chain.accept_submissions(1, submissions)
        result = chain.run_round(1)
        assert result.status == ChainRoundResult.STATUS_DELIVERED
        assert len(result.mailbox_messages) == 5
        delivered_recipients = {message.recipient for message in result.mailbox_messages}
        assert delivered_recipients == {keypair.public_bytes for keypair in recipients}
        for index, recipient in enumerate(recipients):
            matching = [m for m in result.mailbox_messages if m.recipient == recipient.public_bytes]
            assert len(matching) == 1
            body = matching[0].open(keys[index], 1)
            assert body is not None and body.content == f"payload for user-{index}".encode()

    def test_output_order_randomised(self, group):
        """The delivered order should (almost surely) differ from submission order."""
        chain = build_chain(group, length=2, seed=3)
        chain.begin_round(1)
        recipients = [KeyPair.generate(group) for _ in range(12)]
        submissions = [
            make_submission(group, chain, 1, f"user-{index}", recipients[index].public_bytes, b"\x02" * 32)
            for index in range(12)
        ]
        chain.accept_submissions(1, submissions)
        result = chain.run_round(1)
        submitted_order = [keypair.public_bytes for keypair in recipients]
        delivered_order = [message.recipient for message in result.mailbox_messages]
        assert sorted(submitted_order) == sorted(delivered_order)
        assert submitted_order != delivered_order

    def test_empty_round(self, group):
        chain = build_chain(group)
        chain.begin_round(1)
        chain.accept_submissions(1, [])
        result = chain.run_round(1)
        assert result.delivered
        assert result.mailbox_messages == []

    def test_history_recorded(self, group):
        chain = build_chain(group, length=3)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        chain.accept_submissions(
            1, [make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x03" * 32)]
        )
        chain.run_round(1)
        history = chain.history_for_round(1)
        assert len(history) == len(chain.members) + 1
        assert all(len(batch) == 1 for batch in history)

    def test_garbage_inner_envelope_dropped(self, group):
        """A submission whose outer layers are fine but whose inner envelope is garbage
        is simply dropped after the reveal (it can only hurt its malicious sender)."""
        chain = build_chain(group, length=2)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        good = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x04" * 32)
        ephemeral = group.random_scalar()
        garbage_ct = encrypt_outer_layers(
            group, chain.public_keys.mixing_publics, 1, b"not an inner envelope", ephemeral
        )
        bad = ClientSubmission(
            chain_id=0,
            sender="mallory",
            dh_public=group.encode(group.base_mult(ephemeral)),
            ciphertext=garbage_ct,
            proof=prove_dlog(group, group.base(), ephemeral, submission_context(0, 1, "mallory")),
        )
        chain.accept_submissions(1, [good, bad])
        result = chain.run_round(1)
        assert result.delivered
        assert len(result.mailbox_messages) == 1
        assert result.invalid_inner_count == 1

    def test_multiple_rounds_independent(self, group):
        chain = build_chain(group, length=2)
        recipient = KeyPair.generate(group)
        for round_number in (1, 2, 3):
            chain.begin_round(round_number)
            chain.accept_submissions(
                round_number,
                [make_submission(group, chain, round_number, "alice", recipient.public_bytes, b"\x05" * 32)],
            )
            result = chain.run_round(round_number)
            assert result.delivered
            assert len(result.mailbox_messages) == 1

    def test_replayed_submission_from_previous_round_rejected_or_dropped(self, group):
        """A ciphertext built for round 1 cannot be delivered in round 2 (nonce binding)."""
        chain = build_chain(group, length=2)
        chain.begin_round(1)
        chain.begin_round(2)
        recipient = KeyPair.generate(group)
        submission = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x06" * 32)
        entries, rejected = chain.accept_submissions(2, [submission])
        if rejected:
            assert rejected == ["alice"]
        else:
            result = chain.run_round(2)
            # Either the round halts with blame pointing at the replayer, or
            # the message is dropped; it must not be delivered as round-2 mail.
            if result.delivered:
                assert len(result.mailbox_messages) == 0
            else:
                assert result.blame_verdict is not None


class TestPrecompute:
    def test_precompute_round_returns_blinded_keys_and_fills_table(self, group):
        chain = build_chain(group, length=2)
        chain.begin_round(1)
        member = chain.members[0]
        publics = [group.base_mult(group.random_scalar()) for _ in range(3)]
        blinded = member.precompute_round(1, publics)
        assert blinded == [group.scalar_mult(p, member.blinding_secret) for p in publics]
        table = member.round_record(1).precomputed
        assert set(table) == {group.encode(p) for p in publics}
        for public in publics:
            cached_blinded, cached_key = table[group.encode(public)]
            assert cached_blinded == group.scalar_mult(public, member.blinding_secret)
            from repro.crypto.onion import outer_layer_key

            assert cached_key == outer_layer_key(
                group, group.scalar_mult(public, member.mixing_secret)
            )

    def test_precompute_is_incremental_and_idempotent(self, group):
        chain = build_chain(group, length=1)
        chain.begin_round(1)
        member = chain.members[0]
        first = group.base_mult(group.random_scalar())
        second = group.base_mult(group.random_scalar())
        member.precompute_round(1, [first])
        table = member.round_record(1).precomputed
        assert len(table) == 1
        member.precompute_round(1, [first, second])  # tops up, same table object
        assert member.round_record(1).precomputed is table
        assert len(table) == 2
        member.precompute_round(1, [first, second])  # pure repeat: no change
        assert len(table) == 2

    def test_precompute_requires_key_setup(self, group):
        member = ChainMember("server-0", 0, 0, group, random.Random(1))
        with pytest.raises(ProtocolError):
            member.precompute_round(1, [])

    def test_invalidate_precompute_per_round_and_global(self, group):
        chain = build_chain(group, length=1)
        member = chain.members[0]
        public = group.base_mult(group.random_scalar())
        for round_number in (1, 2):
            chain.begin_round(round_number)
            member.precompute_round(round_number, [public])
        member.invalidate_precompute(1)
        assert member.round_record(1).precomputed is None
        assert member.round_record(2).precomputed is not None
        member.invalidate_precompute()
        assert member.round_record(2).precomputed is None
        # Invalidating a round that never precomputed is a no-op.
        member.invalidate_precompute(99)

    def test_chain_precompute_cascade_feeds_every_member(self, group):
        chain = build_chain(group, length=3)
        chain.begin_round(1)
        publics = [group.base_mult(group.random_scalar()) for _ in range(2)]
        chain.precompute_round(1, publics)
        expected = list(publics)
        for member in chain.members:
            table = member.round_record(1).precomputed
            assert set(table) == {group.encode(p) for p in expected}
            expected = [group.scalar_mult(p, member.blinding_secret) for p in expected]

    def test_decode_submission_publics_skips_foreign_and_garbage(self, group):
        chain = build_chain(group, length=2)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        good = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x01" * 32)
        foreign = ClientSubmission(99, "bob", good.dh_public, good.ciphertext, good.proof)
        garbage = ClientSubmission(0, "eve", b"\xff" * 32, good.ciphertext, good.proof)
        publics = chain.decode_submission_publics([good, foreign, garbage])
        assert publics == [group.decode(good.dh_public)]


class TestContextHelpers:
    def test_contexts_are_distinct(self):
        assert setup_context(1, 2) != setup_context(2, 1)
        assert submission_context(1, 2, "a") != submission_context(1, 2, "b")
        assert submission_context(1, 2, "a") != submission_context(1, 3, "a")
