"""Tests for the user agent: chain assignment, message building, mailbox decryption."""

import pytest

from repro.client.chain_selection import ell_for_chains, intersection_chain
from repro.client.user import ChainKeysView, ReceivedMessage, User
from repro.errors import ConfigurationError, ProtocolError
from repro.mixnet.messages import MailboxMessage, MessageBody
from repro.crypto.kdf import loopback_key

from tests.test_ahs_protocol import build_chain


def chain_views(group, num_chains, round_number, length=2):
    """Build real chains and return (chains, views dict) for message construction."""
    chains = [build_chain(group, length=length, chain_id=chain_id, seed=50 + chain_id) for chain_id in range(num_chains)]
    views = {}
    for chain in chains:
        chain.begin_round(round_number)
        views[chain.chain_id] = ChainKeysView(
            chain_id=chain.chain_id,
            mixing_publics=chain.public_keys.mixing_publics,
            aggregate_inner_public=chain.aggregate_inner_public(round_number),
        )
    return chains, views


class TestChainAssignment:
    def test_assigned_chain_count_is_ell(self, group):
        user = User("alice", group)
        for num_chains in (1, 3, 6, 10, 45):
            assert len(user.assigned_chains(num_chains)) == ell_for_chains(num_chains)

    def test_assignment_deterministic(self, group):
        user = User("alice", group)
        assert user.assigned_chains(10) == user.assigned_chains(10)

    def test_conversation_chain_is_shared(self, group):
        alice, bob = User("alice", group), User("bob", group)
        alice.start_conversation("bob", bob.public_bytes)
        shared = alice.conversation_chain(10)
        assert shared in alice.assigned_chains(10)
        assert shared == intersection_chain(alice.public_bytes, bob.public_bytes, 10)

    def test_no_conversation_chain_when_idle(self, group):
        assert User("alice", group).conversation_chain(10) is None


class TestSubmissionBuilding:
    def test_idle_user_sends_all_loopbacks(self, group):
        num_chains = 3
        _, views = chain_views(group, num_chains, 1)
        user = User("alice", group)
        submissions = user.build_round_submissions(1, num_chains, views)
        assert len(submissions) == ell_for_chains(num_chains)
        assert sorted(s.chain_id for s in submissions) == sorted(user.assigned_chains(num_chains))
        assert all(s.sender == "alice" for s in submissions)

    def test_conversing_user_sends_same_number_of_messages(self, group):
        """Traffic pattern must be identical whether or not the user converses (§4.1)."""
        num_chains = 3
        _, views = chain_views(group, num_chains, 1)
        alice, bob = User("alice", group), User("bob", group)
        idle = alice.build_round_submissions(1, num_chains, views)
        alice.start_conversation("bob", bob.public_bytes)
        talking = alice.build_round_submissions(1, num_chains, views, payload=b"hi")
        assert len(idle) == len(talking)
        assert [s.chain_id for s in idle] == [s.chain_id for s in talking]
        assert all(len(i.ciphertext) == len(t.ciphertext) for i, t in zip(idle, talking))

    def test_missing_chain_keys_rejected(self, group):
        user = User("alice", group)
        with pytest.raises(ConfigurationError):
            user.build_round_submissions(1, 3, {})

    def test_cover_submissions_marked(self, group):
        num_chains = 3
        _, views = chain_views(group, num_chains, 2)
        user = User("alice", group)
        covers = user.build_cover_submissions(2, num_chains, views)
        assert all(submission.cover for submission in covers)
        assert len(covers) == ell_for_chains(num_chains)

    def test_sealing_conversation_without_partner_fails(self, group):
        user = User("alice", group)
        with pytest.raises(ProtocolError):
            user._seal_conversation(1, MessageBody.data(b"x"))


class TestEndToEndThroughRealChains:
    def test_conversation_delivery_and_classification(self, group):
        num_chains = 3
        round_number = 1
        chains, views = chain_views(group, num_chains, round_number)
        alice, bob = User("alice", group), User("bob", group)
        alice.start_conversation("bob", bob.public_bytes)
        bob.start_conversation("alice", alice.public_bytes)

        per_chain = {chain.chain_id: [] for chain in chains}
        for user, payload in ((alice, b"hello bob"), (bob, b"hello alice")):
            for submission in user.build_round_submissions(round_number, num_chains, views, payload=payload):
                per_chain[submission.chain_id].append(submission)

        delivered = []
        for chain in chains:
            chain.accept_submissions(round_number, per_chain[chain.chain_id])
            result = chain.run_round(round_number)
            assert result.delivered
            delivered.extend(result.mailbox_messages)

        alice_mail = [m for m in delivered if m.recipient == alice.public_bytes]
        bob_mail = [m for m in delivered if m.recipient == bob.public_bytes]
        ell = ell_for_chains(num_chains)
        assert len(alice_mail) == ell
        assert len(bob_mail) == ell

        alice_received = alice.decrypt_mailbox(round_number, alice_mail, num_chains)
        conversation = [m for m in alice_received if m.kind == ReceivedMessage.KIND_CONVERSATION]
        loopbacks = [m for m in alice_received if m.kind == ReceivedMessage.KIND_LOOPBACK]
        assert [m.content for m in conversation] == [b"hello alice"]
        assert len(loopbacks) == ell - 1

    def test_offline_notice_classification(self, group):
        num_chains = 3
        chains, views = chain_views(group, num_chains, 1)
        alice, bob = User("alice", group), User("bob", group)
        alice.start_conversation("bob", bob.public_bytes)
        bob.start_conversation("alice", alice.public_bytes)
        submissions = alice.build_round_submissions(1, num_chains, views, offline_notice=True)
        per_chain = {chain.chain_id: [] for chain in chains}
        for submission in submissions:
            per_chain[submission.chain_id].append(submission)
        delivered = []
        for chain in chains:
            chain.accept_submissions(1, per_chain[chain.chain_id])
            delivered.extend(chain.run_round(1).mailbox_messages)
        bob_mail = [m for m in delivered if m.recipient == bob.public_bytes]
        received = bob.decrypt_mailbox(1, bob_mail, num_chains)
        assert any(m.kind == ReceivedMessage.KIND_OFFLINE_NOTICE for m in received)
        assert bob.conversation.partner_offline
        assert not bob.conversation.active


class TestMailboxDecryption:
    def test_loopback_classified(self, group):
        user = User("alice", group)
        chain_id = user.assigned_chains(3)[0]
        key = loopback_key(user.keypair.identity_secret_bytes(), chain_id)
        message = MailboxMessage.seal(user.public_bytes, key, 1, MessageBody.loopback())
        received = user.decrypt_mailbox(1, [message], 3)
        assert received[0].kind == ReceivedMessage.KIND_LOOPBACK
        assert received[0].chain_id == chain_id

    def test_unreadable_message_flagged(self, group):
        user = User("alice", group)
        message = MailboxMessage.seal(user.public_bytes, b"\x55" * 32, 1, MessageBody.data(b"x"))
        received = user.decrypt_mailbox(1, [message], 3)
        assert received[0].kind == ReceivedMessage.KIND_UNREADABLE

    def test_message_for_other_user_flagged(self, group):
        user = User("alice", group)
        other = User("bob", group)
        key = loopback_key(other.keypair.identity_secret_bytes(), 0)
        message = MailboxMessage.seal(other.public_bytes, key, 1, MessageBody.loopback())
        received = user.decrypt_mailbox(1, [message], 3)
        assert received[0].kind == ReceivedMessage.KIND_UNREADABLE

    def test_conversation_payload_decrypted(self, group):
        alice, bob = User("alice", group), User("bob", group)
        alice.start_conversation("bob", bob.public_bytes)
        bob.start_conversation("alice", alice.public_bytes)
        sealed = bob._seal_conversation(4, MessageBody.data(b"round 4 text"))
        received = alice.decrypt_mailbox(4, [sealed], 3)
        assert received[0].kind == ReceivedMessage.KIND_CONVERSATION
        assert received[0].content == b"round 4 text"
        assert received[0].partner_name == "bob"
