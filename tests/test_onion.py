"""Tests for padding, inner envelopes, and both onion flavours."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import AEAD_TAG_SIZE, GROUP_ELEMENT_SIZE, PAYLOAD_SIZE
from repro.crypto import onion
from repro.errors import CryptoError


class TestPadding:
    def test_roundtrip(self):
        padded = onion.pad_payload(b"hello")
        assert len(padded) == PAYLOAD_SIZE
        assert onion.unpad_payload(padded) == b"hello"

    def test_empty_payload(self):
        assert onion.unpad_payload(onion.pad_payload(b"")) == b""

    def test_maximum_payload(self):
        data = b"x" * (PAYLOAD_SIZE - 2)
        assert onion.unpad_payload(onion.pad_payload(data)) == data

    def test_oversized_payload_rejected(self):
        with pytest.raises(CryptoError):
            onion.pad_payload(b"x" * (PAYLOAD_SIZE - 1))

    def test_malformed_length_prefix_rejected(self):
        with pytest.raises(CryptoError):
            onion.unpad_payload(b"\xff\xff" + b"\x00" * 10)

    def test_too_short_rejected(self):
        with pytest.raises(CryptoError):
            onion.unpad_payload(b"\x00")

    @given(st.binary(min_size=0, max_size=PAYLOAD_SIZE - 2))
    @settings(max_examples=40)
    def test_roundtrip_property(self, data):
        assert onion.unpad_payload(onion.pad_payload(data)) == data


class TestInnerEnvelope:
    def test_roundtrip_with_all_secrets(self, group):
        inner_secrets = [group.random_scalar() for _ in range(3)]
        aggregate = group.sum(group.base_mult(secret) for secret in inner_secrets)
        envelope = onion.encrypt_inner(group, aggregate, 5, b"mailbox message")
        ok, plaintext = onion.decrypt_inner(group, inner_secrets, 5, envelope)
        assert ok and plaintext == b"mailbox message"

    def test_missing_secret_fails(self, group):
        inner_secrets = [group.random_scalar() for _ in range(3)]
        aggregate = group.sum(group.base_mult(secret) for secret in inner_secrets)
        envelope = onion.encrypt_inner(group, aggregate, 5, b"secret")
        ok, _ = onion.decrypt_inner(group, inner_secrets[:2], 5, envelope)
        assert not ok

    def test_wrong_round_fails(self, group):
        inner_secrets = [group.random_scalar()]
        aggregate = group.base_mult(inner_secrets[0])
        envelope = onion.encrypt_inner(group, aggregate, 5, b"secret")
        ok, _ = onion.decrypt_inner(group, inner_secrets, 6, envelope)
        assert not ok

    def test_serialisation_roundtrip(self, group):
        aggregate = group.base_mult(group.random_scalar())
        envelope = onion.encrypt_inner(group, aggregate, 1, b"data")
        restored = onion.InnerEnvelope.from_bytes(envelope.to_bytes())
        assert restored == envelope
        assert len(envelope) == len(envelope.to_bytes())

    def test_from_bytes_too_short(self):
        with pytest.raises(CryptoError):
            onion.InnerEnvelope.from_bytes(b"short")

    def test_single_server_chain(self, group):
        secret = group.random_scalar()
        envelope = onion.encrypt_inner(group, group.base_mult(secret), 2, b"x")
        assert onion.decrypt_inner(group, [secret], 2, envelope) == (True, b"x")


class TestAHSOuterLayers:
    def _chain(self, group, length):
        """Chain keys in the AHS style: mpk_i = msk_i · bpk_{i-1}."""
        base = group.base()
        mixing_secrets, mixing_publics, blinding_secrets = [], [], []
        for _ in range(length):
            blinding_secret = group.random_scalar()
            mixing_secret = group.random_scalar()
            mixing_publics.append(group.scalar_mult(base, mixing_secret))
            mixing_secrets.append(mixing_secret)
            blinding_secrets.append(blinding_secret)
            base = group.scalar_mult(base, blinding_secret)
        return mixing_secrets, mixing_publics, blinding_secrets

    def test_layers_peel_in_order_with_blinding(self, group):
        mixing_secrets, mixing_publics, blinding_secrets = self._chain(group, 4)
        ephemeral = group.random_scalar()
        ciphertext = onion.encrypt_outer_layers(group, mixing_publics, 9, b"inner", ephemeral)
        dh_public = group.base_mult(ephemeral)
        current = ciphertext
        for position in range(4):
            ok, current = onion.decrypt_outer_layer(
                group, mixing_secrets[position], 9, dh_public, current
            )
            assert ok, f"layer {position} failed to authenticate"
            dh_public = group.scalar_mult(dh_public, blinding_secrets[position])
        assert current == b"inner"

    def test_wrong_server_order_fails(self, group):
        mixing_secrets, mixing_publics, _ = self._chain(group, 2)
        ephemeral = group.random_scalar()
        ciphertext = onion.encrypt_outer_layers(group, mixing_publics, 1, b"x", ephemeral)
        ok, _ = onion.decrypt_outer_layer(
            group, mixing_secrets[1], 1, group.base_mult(ephemeral), ciphertext
        )
        assert not ok

    def test_wrong_round_fails(self, group):
        mixing_secrets, mixing_publics, _ = self._chain(group, 1)
        ephemeral = group.random_scalar()
        ciphertext = onion.encrypt_outer_layers(group, mixing_publics, 1, b"x", ephemeral)
        ok, _ = onion.decrypt_outer_layer(
            group, mixing_secrets[0], 2, group.base_mult(ephemeral), ciphertext
        )
        assert not ok

    def test_tampered_ciphertext_fails(self, group):
        mixing_secrets, mixing_publics, _ = self._chain(group, 1)
        ephemeral = group.random_scalar()
        ciphertext = bytearray(onion.encrypt_outer_layers(group, mixing_publics, 1, b"x", ephemeral))
        ciphertext[0] ^= 1
        ok, _ = onion.decrypt_outer_layer(
            group, mixing_secrets[0], 1, group.base_mult(ephemeral), bytes(ciphertext)
        )
        assert not ok

    def test_empty_chain_is_identity(self, group):
        assert onion.encrypt_outer_layers(group, [], 1, b"payload", 5) == b"payload"


class TestBaselineOnion:
    def test_roundtrip(self, group):
        mixing_secrets = [group.random_scalar() for _ in range(3)]
        mixing_publics = [group.base_mult(secret) for secret in mixing_secrets]
        ciphertext = onion.encrypt_onion_baseline(group, mixing_publics, 4, b"payload")
        current = ciphertext
        for secret in mixing_secrets:
            ok, current = onion.decrypt_baseline_layer(group, secret, 4, current)
            assert ok
        assert current == b"payload"

    def test_wrong_key_fails(self, group):
        mixing_publics = [group.base_mult(group.random_scalar())]
        ciphertext = onion.encrypt_onion_baseline(group, mixing_publics, 1, b"p")
        ok, _ = onion.decrypt_baseline_layer(group, group.random_scalar(), 1, ciphertext)
        assert not ok

    def test_too_short_input(self, group):
        ok, _ = onion.decrypt_baseline_layer(group, 1, 1, b"tiny")
        assert not ok

    def test_garbage_key_encoding(self, group):
        ok, _ = onion.decrypt_baseline_layer(group, 1, 1, b"\xff" * 80)
        assert not ok


class TestSizeAccounting:
    def test_ahs_size_matches_construction(self, group):
        """onion_size() must match the byte length the real construction produces."""
        chain_length = 3
        mixing_secrets = [group.random_scalar() for _ in range(chain_length)]
        mixing_publics = [group.base_mult(s) for s in mixing_secrets]
        aggregate = group.base_mult(group.random_scalar())
        mailbox_plaintext = b"\x00" * (GROUP_ELEMENT_SIZE + PAYLOAD_SIZE + AEAD_TAG_SIZE)
        envelope = onion.encrypt_inner(group, aggregate, 1, mailbox_plaintext)
        ephemeral = group.random_scalar()
        ciphertext = onion.encrypt_outer_layers(group, mixing_publics, 1, envelope.to_bytes(), ephemeral)
        produced = GROUP_ELEMENT_SIZE + len(ciphertext)
        assert produced == onion.onion_size(chain_length)

    def test_baseline_size_matches_construction(self, group):
        chain_length = 2
        mixing_publics = [group.base_mult(group.random_scalar()) for _ in range(chain_length)]
        mailbox_plaintext = b"\x00" * (GROUP_ELEMENT_SIZE + PAYLOAD_SIZE + AEAD_TAG_SIZE)
        ciphertext = onion.encrypt_onion_baseline(group, mixing_publics, 1, mailbox_plaintext)
        assert len(ciphertext) == onion.onion_size(chain_length, ahs=False)

    def test_size_monotone_in_chain_length(self):
        sizes = [onion.onion_size(k) for k in range(1, 40)]
        assert sizes == sorted(sizes)

    def test_layer_sizes(self):
        sizes = onion.onion_layers_sizes(4)
        assert len(sizes) == 4
        assert sizes[0] > sizes[-1]
