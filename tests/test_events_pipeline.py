"""Tests for the discrete-event chain-pipeline simulator."""

import pytest

from repro.errors import SimulationError
from repro.simulation.events import simulate_chain_pipeline


class TestSingleChain:
    def test_serial_latency(self):
        result = simulate_chain_pipeline([["a", "b", "c"]], stage_time=2.0, network_rtt=0.5)
        # 3 stages of 2 s plus 2 hand-offs of 0.5 s.
        assert result.makespan == pytest.approx(7.0)

    def test_no_rtt(self):
        result = simulate_chain_pipeline([["a", "b"]], stage_time=1.0)
        assert result.makespan == pytest.approx(2.0)

    def test_single_stage(self):
        result = simulate_chain_pipeline([["a"]], stage_time=3.0)
        assert result.makespan == pytest.approx(3.0)


class TestContention:
    def test_shared_server_serialises(self):
        """Two chains whose only server is the same machine cannot overlap."""
        result = simulate_chain_pipeline([["a"], ["a"]], stage_time=2.0)
        assert result.makespan == pytest.approx(4.0)

    def test_disjoint_chains_overlap(self):
        result = simulate_chain_pipeline([["a"], ["b"]], stage_time=2.0)
        assert result.makespan == pytest.approx(2.0)

    def test_more_cores_reduce_contention(self):
        chains = [["a"], ["a"], ["a"], ["a"]]
        one_core = simulate_chain_pipeline(chains, stage_time=1.0, cores_per_server=1)
        four_cores = simulate_chain_pipeline(chains, stage_time=1.0, cores_per_server=4)
        assert one_core.makespan == pytest.approx(4.0)
        assert four_cores.makespan == pytest.approx(1.0)

    def test_staggered_chains_beat_aligned(self):
        """The §5.2.1 staggering rationale, reproduced in miniature.

        Aligned: both chains need server "a" first and "b" second → the second
        chain always waits.  Staggered: they start on different servers and
        fully overlap.
        """
        aligned = simulate_chain_pipeline([["a", "b"], ["a", "b"]], stage_time=1.0)
        staggered = simulate_chain_pipeline([["a", "b"], ["b", "a"]], stage_time=1.0)
        assert staggered.makespan < aligned.makespan

    def test_utilisation_reported(self):
        result = simulate_chain_pipeline([["a", "b"], ["b", "a"]], stage_time=1.0)
        assert set(result.server_busy_time) == {"a", "b"}
        assert 0.0 < result.min_utilisation() <= result.max_utilisation() <= 1.0


class TestValidation:
    def test_negative_stage_time(self):
        with pytest.raises(SimulationError):
            simulate_chain_pipeline([["a"]], stage_time=-1.0)

    def test_zero_cores(self):
        with pytest.raises(SimulationError):
            simulate_chain_pipeline([["a"]], stage_time=1.0, cores_per_server=0)

    def test_empty_chain(self):
        with pytest.raises(SimulationError):
            simulate_chain_pipeline([[]], stage_time=1.0)

    def test_no_chains(self):
        result = simulate_chain_pipeline([], stage_time=1.0)
        assert result.makespan == 0.0
