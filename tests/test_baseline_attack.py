"""Demonstration that the §5 baseline is vulnerable to the active attack of §6.

"If the adversary drops Alice's message in a chain, then there are two
possible observable outcomes in this chain: Alice receives (1) no message,
meaning Alice is not in a conversation in this chain, or (2) one message,
meaning someone ... is chatting with Alice." (§4.1)

These tests reproduce that information leak against the baseline chain — and
then show that the same attack against an AHS chain is detected instead of
leaking, which is the entire point of the aggregate hybrid shuffle.
"""

from repro.crypto.keys import KeyPair
from repro.mixnet.ahs import ChainRoundResult
from repro.mixnet.messages import MailboxMessage, MessageBody
from repro.crypto.onion import encrypt_onion_baseline
from repro.coordinator.adversary import MODE_TAMPER_CIPHERTEXT, TamperingMember

from tests.test_ahs_protocol import build_chain, make_submission
from tests.test_baseline_server import build_baseline_chain


def _baseline_round_with_drop(group, alice_talks_to_bob: bool, drop_first: bool):
    """Run a baseline round where the adversary drops Alice's submission."""
    chain = build_baseline_chain(group, length=2, seed=13)
    alice = KeyPair.generate(group)
    bob = KeyPair.generate(group)
    alice_key, bob_key = b"\x0a" * 32, b"\x0b" * 32
    onions = []
    # Alice sends either a conversation message to Bob or a loopback to herself.
    recipient = bob.public_bytes if alice_talks_to_bob else alice.public_bytes
    alice_onion = encrypt_onion_baseline(
        group,
        chain.mixing_public_keys(),
        1,
        MailboxMessage.seal(recipient, alice_key, 1, MessageBody.data(b"hi")).to_bytes(),
    )
    # Bob mirrors: if they talk, he sends to Alice; otherwise to himself.
    bob_recipient = alice.public_bytes if alice_talks_to_bob else bob.public_bytes
    bob_onion = encrypt_onion_baseline(
        group,
        chain.mixing_public_keys(),
        1,
        MailboxMessage.seal(bob_recipient, bob_key, 1, MessageBody.data(b"yo")).to_bytes(),
    )
    onions = [alice_onion, bob_onion]
    if drop_first:
        onions = onions[1:]  # the malicious first server silently drops Alice's message
    result = chain.run_round(1, onions)
    counts = {alice.public_bytes: 0, bob.public_bytes: 0}
    for message in result.mailbox_messages:
        if message.recipient in counts:
            counts[message.recipient] += 1
    return counts[alice.public_bytes]


class TestBaselineLeak:
    def test_drop_attack_distinguishes_conversation_state(self, group):
        """After dropping Alice's message, her mailbox count reveals whether she talks."""
        alice_count_talking = _baseline_round_with_drop(group, alice_talks_to_bob=True, drop_first=True)
        alice_count_idle = _baseline_round_with_drop(group, alice_talks_to_bob=False, drop_first=True)
        # Talking: Bob's message still reaches Alice → 1.  Idle: her loopback
        # was dropped → 0.  The adversary distinguishes the two worlds.
        assert alice_count_talking == 1
        assert alice_count_idle == 0

    def test_without_attack_counts_are_identical(self, group):
        """Absent tampering the observable count is the same in both worlds."""
        talking = _baseline_round_with_drop(group, alice_talks_to_bob=True, drop_first=False)
        idle = _baseline_round_with_drop(group, alice_talks_to_bob=False, drop_first=False)
        assert talking == idle == 1


class TestAHSStopsTheAttack:
    def test_same_attack_is_detected_not_leaked(self, group):
        """Against AHS, tampering halts the round before anything observable differs."""
        chain = build_chain(group, length=3, seed=17)
        chain.members[0] = TamperingMember(chain.members[0], MODE_TAMPER_CIPHERTEXT)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submissions = [
            make_submission(group, chain, 1, f"user-{i}", recipient.public_bytes, b"\x0c" * 32)
            for i in range(3)
        ]
        chain.accept_submissions(1, submissions)
        result = chain.run_round(1)
        assert result.status != ChainRoundResult.STATUS_DELIVERED
        assert result.mailbox_messages == []  # nothing observable is released
        assert result.blame_verdict.malicious_servers == ["server-0"]
