"""Tests for the machine-checkable reproduction scorecard."""

from repro.analysis.scorecard import ScorecardEntry, build_scorecard, render_scorecard


class TestScorecard:
    def test_every_entry_within_tolerance(self):
        """The repository's headline reproduction claim, asserted in one place."""
        for entry in build_scorecard():
            assert entry.within_tolerance, (
                f"{entry.figure} / {entry.quantity}: paper={entry.paper_value} "
                f"reproduced={entry.reproduced_value} (ratio {entry.ratio:.2f})"
            )

    def test_covers_every_figure(self):
        figures_covered = {entry.figure for entry in build_scorecard()}
        for figure in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            assert figure in figures_covered

    def test_ratio_and_tolerance_logic(self):
        exact = ScorecardEntry("figX", "q", 10.0, 10.0, 0.1)
        assert exact.ratio == 1.0 and exact.within_tolerance
        off = ScorecardEntry("figX", "q", 10.0, 15.0, 0.1)
        assert not off.within_tolerance
        zero_paper = ScorecardEntry("figX", "q", 0.0, 0.0, 0.1)
        assert zero_paper.ratio == 1.0

    def test_render(self):
        text = render_scorecard()
        assert "paper" in text and "reproduced" in text
        assert text.count("\n") >= len(build_scorecard())

    def test_render_with_explicit_entries(self):
        entries = [ScorecardEntry("figX", "quantity", 1.0, 1.05, 0.1)]
        text = render_scorecard(entries)
        assert "figX" in text and "ok" in text
