"""Tests for the pure-Python edwards25519 group."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.group import Ed25519Group, default_group
from repro.errors import DecodingError

GROUP = Ed25519Group()
SCALARS = st.integers(min_value=1, max_value=GROUP.order - 1)


class TestBasePoint:
    def test_base_point_on_curve(self):
        # -x^2 + y^2 = 1 + d x^2 y^2 must hold for the base point.
        p = 2**255 - 19
        x, y = GROUP.base().affine()
        d = (-121665 * pow(121666, -1, p)) % p
        assert (-x * x + y * y - 1 - d * x * x * y * y) % p == 0

    def test_base_point_has_prime_order(self):
        assert GROUP.scalar_mult(GROUP.base(), GROUP.order).is_identity()
        assert not GROUP.scalar_mult(GROUP.base(), 2).is_identity()

    def test_known_base_point_y(self):
        p = 2**255 - 19
        _, y = GROUP.base().affine()
        assert y == (4 * pow(5, -1, p)) % p

    def test_base_encoding_matches_rfc8032(self):
        # The standard encoding of the edwards25519 base point.
        assert GROUP.encode(GROUP.base()).hex() == (
            "5866666666666666666666666666666666666666666666666666666666666666"
        )


class TestGroupLaws:
    def test_identity_is_neutral(self):
        point = GROUP.base_mult(12345)
        assert GROUP.add(point, GROUP.identity()) == point
        assert GROUP.add(GROUP.identity(), point) == point

    def test_negation(self):
        point = GROUP.base_mult(777)
        assert GROUP.add(point, GROUP.neg(point)).is_identity()

    def test_sub(self):
        a = GROUP.base_mult(10)
        b = GROUP.base_mult(4)
        assert GROUP.sub(a, b) == GROUP.base_mult(6)

    def test_associativity_small(self):
        a, b, c = GROUP.base_mult(3), GROUP.base_mult(5), GROUP.base_mult(9)
        assert GROUP.add(GROUP.add(a, b), c) == GROUP.add(a, GROUP.add(b, c))

    def test_scalar_mult_matches_repeated_addition(self):
        point = GROUP.base()
        total = GROUP.identity()
        for _ in range(7):
            total = GROUP.add(total, point)
        assert total == GROUP.scalar_mult(point, 7)

    def test_scalar_mult_zero_is_identity(self):
        assert GROUP.scalar_mult(GROUP.base(), 0).is_identity()

    def test_sum(self):
        points = [GROUP.base_mult(value) for value in (1, 2, 3, 4)]
        assert GROUP.sum(points) == GROUP.base_mult(10)

    @given(SCALARS, SCALARS)
    @settings(max_examples=10, deadline=None)
    def test_exponent_addition_property(self, a, b):
        left = GROUP.add(GROUP.base_mult(a), GROUP.base_mult(b))
        assert left == GROUP.base_mult((a + b) % GROUP.order)


class TestDiffieHellman:
    def test_shared_secret_agreement(self):
        a = GROUP.random_scalar()
        b = GROUP.random_scalar()
        assert GROUP.diffie_hellman(GROUP.base_mult(b), a) == GROUP.diffie_hellman(
            GROUP.base_mult(a), b
        )

    def test_blinding_commutes(self):
        # (x·B)^bsk1^bsk2 is independent of the blinding order — the property
        # the AHS aggregate check relies on.
        x, bsk1, bsk2 = (GROUP.random_scalar() for _ in range(3))
        point = GROUP.base_mult(x)
        one = GROUP.scalar_mult(GROUP.scalar_mult(point, bsk1), bsk2)
        two = GROUP.scalar_mult(GROUP.scalar_mult(point, bsk2), bsk1)
        assert one == two


class TestEncoding:
    def test_roundtrip(self):
        point = GROUP.base_mult(GROUP.random_scalar())
        assert GROUP.decode(GROUP.encode(point)) == point

    def test_identity_roundtrip(self):
        assert GROUP.decode(GROUP.encode(GROUP.identity())).is_identity()

    def test_encoding_length(self):
        assert len(GROUP.encode(GROUP.base())) == GROUP.element_size

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(DecodingError):
            GROUP.decode(b"\x00" * 31)

    def test_decode_rejects_out_of_range_y(self):
        with pytest.raises(DecodingError):
            GROUP.decode(b"\xff" * 32)

    def test_scalar_codec_roundtrip(self):
        scalar = GROUP.random_scalar()
        assert GROUP.decode_scalar(GROUP.encode_scalar(scalar)) == scalar

    @given(SCALARS)
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, scalar):
        point = GROUP.base_mult(scalar)
        assert GROUP.decode(GROUP.encode(point)) == point


class TestSubgroupAndHashing:
    def test_base_multiples_in_prime_subgroup(self):
        assert GROUP.is_in_prime_subgroup(GROUP.base_mult(9999))

    def test_hash_to_scalar_deterministic(self):
        assert GROUP.hash_to_scalar(b"a", b"b") == GROUP.hash_to_scalar(b"a", b"b")

    def test_hash_to_scalar_domain_separated(self):
        assert GROUP.hash_to_scalar(b"ab", b"c") != GROUP.hash_to_scalar(b"a", b"bc")

    def test_random_scalar_range(self):
        for _ in range(20):
            assert 1 <= GROUP.random_scalar() < GROUP.order

    def test_default_group_singleton(self):
        assert default_group() is default_group()

    def test_point_hash_consistent_with_equality(self):
        a = GROUP.base_mult(5)
        b = GROUP.add(GROUP.base_mult(2), GROUP.base_mult(3))
        assert a == b
        assert hash(a) == hash(b)

    def test_point_not_equal_to_other_types(self):
        assert GROUP.base() != object()
