"""The streaming population pipeline (DESIGN.md §9): chunked == monolithic.

Properties under test, per ISSUE 6:

* **bit-identity** — for *random* chunk sizes (including 1 and larger than
  the population) and worker counts, a chunked deployment's round reports
  equal the monolithic batched path's, for submissions, banked covers, and
  mailbox decryption alike (``RoundReport.canonical_bytes`` hashes all
  three observables);
* **chunk mechanics** — :func:`repro.population.streaming.chunk_spans`
  partitions without loss; the forked pool propagates worker exceptions;
  RNG cursors replay to the exact stream position;
* **configuration** — incoherent knob combinations are rejected at
  ``DeploymentConfig.validate`` time with actionable errors.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordinator.network import Deployment, DeploymentConfig
from repro.errors import ConfigurationError
from repro.population.streaming import chunk_spans

NUM_USERS = 6

_REFERENCE = None


def build(**kwargs):
    base = dict(
        num_servers=4, num_users=NUM_USERS, num_chains=3, chain_length=2,
        seed=77, group_kind="modp", population="batched",
    )
    base.update(kwargs)
    return Deployment.create(DeploymentConfig(**base))


def two_round_script(deployment):
    """Conversation payloads, an offline round spending banked covers, and a
    plain round — together touching every streamed flow (build, cover bank,
    delivery, fetch/decrypt, §5.3.3 offline notices)."""
    a, b = deployment.users[0].name, deployment.users[1].name
    deployment.start_conversation(a, b)
    return [
        deployment.round_spec(payloads={a: b"ping", b: b"pong"}),
        deployment.round_spec(offline_users={b}),
        deployment.round_spec(payloads={a: b"again"}),
    ]


def run_script(**kwargs):
    deployment = build(**kwargs)
    reports = deployment.run_rounds(two_round_script(deployment))
    fingerprints = [report.canonical_bytes() for report in reports]
    deployment.close()
    return fingerprints


def reference_fingerprints():
    global _REFERENCE
    if _REFERENCE is None:
        _REFERENCE = run_script()
    return _REFERENCE


class TestChunkSpans:
    def test_none_is_one_monolithic_span(self):
        assert list(chunk_spans([1, 2, 3], None)) == [[1, 2, 3]]
        assert list(chunk_spans([], None)) == [[]]

    def test_partition_is_lossless_and_ordered(self):
        spans = list(chunk_spans(list(range(10)), 3))
        assert spans == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_chunk_larger_than_items(self):
        assert list(chunk_spans([1, 2], 100)) == [[1, 2]]

    def test_empty_items_yield_one_empty_span(self):
        assert list(chunk_spans([], 4)) == [[]]

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            list(chunk_spans([1], 0))


class TestChunkedBitIdentity:
    """Hypothesis: any (chunk size, worker count) is unobservable."""

    @settings(max_examples=8, deadline=None)
    @given(
        chunk_size=st.integers(min_value=1, max_value=NUM_USERS + 3),
        workers=st.integers(min_value=0, max_value=3),
    )
    def test_random_chunking_matches_monolithic(self, chunk_size, workers):
        actual = run_script(
            population_chunk_size=chunk_size, population_build_workers=workers
        )
        assert actual == reference_fingerprints()

    def test_chunk_of_one_matches(self):
        assert run_script(population_chunk_size=1) == reference_fingerprints()

    def test_chunk_beyond_population_matches(self):
        assert (
            run_script(population_chunk_size=NUM_USERS + 50)
            == reference_fingerprints()
        )

    def test_forked_single_chunk_falls_back_to_serial(self):
        # One span → nothing to parallelise; the pool is skipped entirely.
        assert (
            run_script(
                population_chunk_size=NUM_USERS + 1, population_build_workers=4
            )
            == reference_fingerprints()
        )

    def test_more_workers_than_chunks_matches(self):
        assert (
            run_script(population_chunk_size=4, population_build_workers=8)
            == reference_fingerprints()
        )


class TestForkedPool:
    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs POSIX fork")
    def test_worker_exception_propagates_to_parent(self, monkeypatch):
        deployment = build(population_chunk_size=2, population_build_workers=2)
        population = deployment.population

        original = population.build_round_submissions_batch

        def explode(round_number, chain_keys, users, **kwargs):
            if kwargs.get("cover"):
                return original(round_number, chain_keys, users, **kwargs)
            raise RuntimeError("chunk build exploded")

        # Patched before the fork, so the failure happens inside a worker
        # and must cross the pipe as a framed error.
        monkeypatch.setattr(population, "build_round_submissions_batch", explode)
        with pytest.raises(RuntimeError, match="chunk build exploded"):
            deployment.run_round()
        deployment.close()

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs POSIX fork")
    def test_rng_cursor_replay_is_exact(self):
        """After a forked round, every seeded user RNG sits exactly where the
        monolithic build would have left it (getstate comparison — stronger
        than report parity)."""
        forked = build(population_chunk_size=2, population_build_workers=3)
        monolithic = build()
        forked.run_round()
        monolithic.run_round()
        for left, right in zip(forked.users, monolithic.users):
            assert left._rng is not None
            assert left._rng.getstate() == right._rng.getstate()
        forked.close()
        monolithic.close()


class TestStreamingConfiguration:
    def test_chunk_size_requires_batched_population(self):
        with pytest.raises(ConfigurationError, match="population='batched'"):
            DeploymentConfig(population="object", population_chunk_size=100).validate()

    def test_workers_require_batched_population(self):
        with pytest.raises(ConfigurationError, match="population='batched'"):
            DeploymentConfig(population="object", population_build_workers=2).validate()

    def test_workers_require_chunk_size(self):
        with pytest.raises(ConfigurationError, match="population_chunk_size"):
            DeploymentConfig(
                population="batched", population_build_workers=2
            ).validate()

    def test_nonpositive_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            DeploymentConfig(
                population="batched", population_chunk_size=0
            ).validate()

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            DeploymentConfig(
                population="batched",
                population_chunk_size=10,
                population_build_workers=-1,
            ).validate()

    def test_coherent_streaming_config_accepted(self):
        DeploymentConfig(
            population="batched",
            population_chunk_size=10,
            population_build_workers=2,
        ).validate()
