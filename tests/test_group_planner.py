"""Tests for the §9 group-conversation planner."""

import hashlib
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.chain_selection import chains_for_user, intersection_chain
from repro.client.group import GroupConversationPlanner
from repro.errors import ChainSelectionError


def synthetic_members(count, salt=b"group"):
    return {
        f"user-{index}": hashlib.sha256(salt + bytes([index])).digest() for index in range(count)
    }


def find_feasible_trio(num_chains, attempts=200):
    """Search for three users whose pairwise chains are all distinct."""
    planner = GroupConversationPlanner(num_chains)
    for attempt in range(attempts):
        members = synthetic_members(3, salt=b"trio-%d" % attempt)
        if planner.is_supportable(members):
            return members
    return None


class TestPairwiseChains:
    def test_matches_chain_selection(self):
        planner = GroupConversationPlanner(10)
        members = synthetic_members(4)
        chains = planner.pairwise_chains(members)
        for (name_a, name_b), chain in chains.items():
            assert chain == intersection_chain(members[name_a], members[name_b], 10)

    def test_requires_two_members(self):
        planner = GroupConversationPlanner(10)
        with pytest.raises(ChainSelectionError):
            planner.pairwise_chains(synthetic_members(1))

    def test_invalid_chain_count(self):
        with pytest.raises(ChainSelectionError):
            GroupConversationPlanner(0)


class TestFeasibility:
    def test_two_member_group_always_supportable(self):
        planner = GroupConversationPlanner(20)
        assert planner.is_supportable(synthetic_members(2))

    def test_feasible_trio_plan(self):
        num_chains = 10
        members = find_feasible_trio(num_chains)
        assert members is not None, "no feasible trio found in the search budget"
        planner = GroupConversationPlanner(num_chains)
        plan = planner.plan(members)
        # Every member talks to both others, each on a chain she is assigned to.
        for name, key in members.items():
            partners = plan.partners_of(name)
            assert partners == sorted(other for other in members if other != name)
            assigned = set(chains_for_user(key, num_chains))
            assert set(plan.send_plan[name]) <= assigned
        # Pair chains are symmetric accessors.
        names = sorted(members)
        assert plan.chain_for_pair(names[0], names[1]) == plan.chain_for_pair(names[1], names[0])

    def test_loopback_chains_complement_plan(self):
        num_chains = 10
        members = find_feasible_trio(num_chains)
        assert members is not None
        planner = GroupConversationPlanner(num_chains)
        plan = planner.plan(members)
        for name, key in members.items():
            loopbacks = planner.loopback_chains(members, name)
            assigned = chains_for_user(key, num_chains)
            assert len(loopbacks) + len(plan.send_plan[name]) == len(assigned)

    def test_conflicting_group_detected_and_rejected(self):
        """Members of the same chain-selection group collide on every chain."""
        num_chains = 10
        planner = GroupConversationPlanner(num_chains)
        # Find three users that all share the same first chain (forced conflict):
        from repro.client.chain_selection import assign_group, ell_for_chains

        ell = ell_for_chains(num_chains)
        same_group = {}
        index = 0
        while len(same_group) < 3:
            key = hashlib.sha256(b"conflict-%d" % index).digest()
            if assign_group(key, ell + 1) == 0:
                same_group[f"user-{len(same_group)}"] = key
            index += 1
        assert not planner.is_supportable(same_group)
        conflicts = planner.conflicts(same_group)
        assert conflicts and all(len(partners) > 1 for _, _, partners in conflicts)
        with pytest.raises(ChainSelectionError):
            planner.plan(same_group)

    @given(st.integers(min_value=2, max_value=200), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30)
    def test_any_pair_is_always_supportable(self, num_chains, seed):
        """Two users always form a valid 'group' — the base one-to-one case."""
        planner = GroupConversationPlanner(num_chains)
        members = {
            "a": hashlib.sha256(b"pair-a-%d" % seed).digest(),
            "b": hashlib.sha256(b"pair-b-%d" % seed).digest(),
        }
        plan = planner.plan(members)
        assert plan.partners_of("a") == ["b"]
        assert plan.chain_for_pair("a", "b") == intersection_chain(
            members["a"], members["b"], num_chains
        )
