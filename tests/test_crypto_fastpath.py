"""The batched-crypto fast path: correctness and the precomputation speedup.

``Ed25519Group`` keeps a fixed-base comb table for ``base_mult``, per-point
window tables for ``scalar_mult``, a shared-recoding batch blinding helper,
and Straus accumulation for ``Σ sᵢ·Pᵢ`` (used by NIZK verification).  All of
them must agree exactly with the reference double-and-add ladder
(``scalar_mult_slow``), and the comb table must actually be faster — the CI
microbench job runs the timing test below as its smoke check.
"""

import random
import time

import pytest

from repro.crypto.group import (
    Ed25519Group,
    ModPGroup,
    multi_scalar_accumulate,
    scalar_mult_batch,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def curve():
    return Ed25519Group()


@pytest.fixture()
def fixed_rng():
    return random.Random(20260729)


EDGE_SCALARS = [0, 1, 2, 15, 16, 17, 255, 256]


class TestFixedBaseComb:
    def test_matches_reference_ladder(self, curve, fixed_rng):
        base = curve.base()
        scalars = EDGE_SCALARS + [
            curve.order - 1,
            curve.order,
            curve.order + 7,
            *(fixed_rng.randrange(curve.order) for _ in range(16)),
        ]
        for scalar in scalars:
            assert curve.base_mult(scalar) == curve.scalar_mult_slow(base, scalar)

    def test_zero_gives_identity(self, curve):
        assert curve.base_mult(0).is_identity()
        assert curve.base_mult(curve.order).is_identity()

    def test_scalar_mult_routes_base_point(self, curve, fixed_rng):
        scalar = fixed_rng.randrange(curve.order)
        assert curve.scalar_mult(curve.base(), scalar) == curve.base_mult(scalar)


class TestWindowedScalarMult:
    def test_matches_reference_ladder(self, curve, fixed_rng):
        point = curve.base_mult(0xDEADBEEF)
        for scalar in EDGE_SCALARS + [curve.order - 1] + [
            fixed_rng.randrange(curve.order) for _ in range(12)
        ]:
            assert curve.scalar_mult(point, scalar) == curve.scalar_mult_slow(point, scalar)

    def test_identity_point_short_circuits(self, curve):
        assert curve.scalar_mult(curve.identity(), 12345).is_identity()

    def test_diffie_hellman_agreement_still_holds(self, curve, fixed_rng):
        a = fixed_rng.randrange(1, curve.order)
        b = fixed_rng.randrange(1, curve.order)
        shared_ab = curve.diffie_hellman(curve.base_mult(b), a)
        shared_ba = curve.diffie_hellman(curve.base_mult(a), b)
        assert shared_ab == shared_ba


class TestBatchBlinding:
    def test_batch_matches_individual(self, curve, fixed_rng):
        points = [curve.base_mult(fixed_rng.randrange(1, curve.order)) for _ in range(8)]
        scalar = fixed_rng.randrange(1, curve.order)
        batch = curve.scalar_mult_batch(points, scalar)
        assert batch == [curve.scalar_mult_slow(point, scalar) for point in points]

    def test_batch_handles_zero_scalar_and_identity(self, curve):
        points = [curve.identity(), curve.base()]
        assert all(point.is_identity() for point in curve.scalar_mult_batch(points, 0))
        blinded = curve.scalar_mult_batch(points, 5)
        assert blinded[0].is_identity()
        assert blinded[1] == curve.base_mult(5)

    def test_module_helper_falls_back_without_fast_path(self, curve):
        class Bare:
            def __init__(self, inner):
                self.order = inner.order
                self._inner = inner

            def scalar_mult(self, point, scalar):
                return self._inner.scalar_mult_slow(point, scalar)

        bare = Bare(curve)
        points = [curve.base_mult(3), curve.base_mult(4)]
        assert scalar_mult_batch(bare, points, 7) == [
            curve.base_mult(21),
            curve.base_mult(28),
        ]


class TestMultiScalarAccumulate:
    def test_matches_sum_of_products(self, curve, fixed_rng):
        points = [curve.base_mult(fixed_rng.randrange(1, curve.order)) for _ in range(5)]
        scalars = [fixed_rng.randrange(curve.order) for _ in range(5)]
        expected = curve.sum(
            curve.scalar_mult_slow(point, scalar) for point, scalar in zip(points, scalars)
        )
        assert curve.multi_scalar_accumulate(points, scalars) == expected
        assert multi_scalar_accumulate(curve, points, scalars) == expected

    def test_empty_and_degenerate_terms(self, curve):
        assert curve.multi_scalar_accumulate([], []).is_identity()
        mixed = curve.multi_scalar_accumulate(
            [curve.identity(), curve.base()], [99, 0]
        )
        assert mixed.is_identity()

    def test_length_mismatch_rejected(self, curve):
        with pytest.raises(ConfigurationError):
            curve.multi_scalar_accumulate([curve.base()], [1, 2])

    def test_modp_group_agrees(self, fixed_rng):
        group = ModPGroup(bits=96)
        elements = [group.base_mult(fixed_rng.randrange(1, group.order)) for _ in range(4)]
        scalars = [fixed_rng.randrange(group.order) for _ in range(4)]
        expected = group.sum(
            group.scalar_mult(element, scalar) for element, scalar in zip(elements, scalars)
        )
        assert group.multi_scalar_accumulate(elements, scalars) == expected

    def test_verification_identity(self, curve, fixed_rng):
        """The fused check used by verify_dlog: s·G − c·P == R."""
        secret = fixed_rng.randrange(1, curve.order)
        nonce = fixed_rng.randrange(1, curve.order)
        challenge = fixed_rng.randrange(1, curve.order)
        public = curve.base_mult(secret)
        commitment = curve.base_mult(nonce)
        response = (nonce + challenge * secret) % curve.order
        combined = curve.multi_scalar_accumulate(
            [curve.base(), public], [response, curve.order - challenge]
        )
        assert combined == commitment


class TestPrecomputationSpeed:
    def test_base_mult_fast_path_at_least_as_fast_as_double_and_add(self, curve, fixed_rng):
        """CI microbench smoke: the comb table must not lose to the old ladder.

        Measured as the best of several batches so scheduler noise cannot
        flip the comparison; the comb path is ~5x faster in practice, so the
        margin here is very comfortable.
        """
        scalars = [fixed_rng.randrange(1, curve.order) for _ in range(8)]
        base = curve.base()
        curve.base_mult(1)  # warm the comb table

        def best_of(fn, repeats=3):
            timings = []
            for _ in range(repeats):
                start = time.perf_counter()
                for scalar in scalars:
                    fn(scalar)
                timings.append(time.perf_counter() - start)
            return min(timings)

        fast = best_of(curve.base_mult)
        slow = best_of(lambda scalar: curve.scalar_mult_slow(base, scalar))
        assert fast <= slow, f"comb base_mult slower than double-and-add: {fast:.4f}s vs {slow:.4f}s"
