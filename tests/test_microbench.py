"""Tests for the primitive microbenchmarks and the measured cost model."""

from repro.simulation.microbench import measure_primitives, measured_cost_model


class TestMicrobench:
    def test_measurements_positive(self, group):
        timings = measure_primitives(iterations=3, group=group)
        assert timings.scalar_mult > 0
        assert timings.aead_fixed >= 0
        assert timings.aead_per_byte >= 0
        assert timings.nizk_prove > 0
        assert timings.nizk_verify > 0
        assert timings.iterations == 3

    def test_measured_cost_model(self, group):
        model = measured_cost_model(iterations=3, group=group)
        assert model.mix_per_message_per_hop > 0
        assert "measured" in model.source

    def test_nizk_more_expensive_than_scalar_mult(self, group):
        timings = measure_primitives(iterations=5, group=group)
        assert timings.nizk_prove > timings.scalar_mult

    def test_python_substrate_slower_than_paper_testbed(self):
        """Documents the substitution: our pure-Python Ed25519 is far slower than
        the paper's Go/NaCl testbed constants (see DESIGN.md §3)."""
        from repro.simulation.costmodel import CostModel

        measured = measured_cost_model(iterations=3)
        assert measured.scalar_mult > CostModel.paper_testbed().scalar_mult
