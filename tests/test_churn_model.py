"""Tests of the server-churn availability model (Figure 8)."""

import pytest

from repro.errors import SimulationError
from repro.simulation.churn import analytic_failure_rate, simulate_failure_rate


class TestAnalytic:
    def test_paper_anchor_one_percent(self):
        """Paper: ~27% of conversations fail at 1% churn (k ≈ 31-32)."""
        assert analytic_failure_rate(0.01, 31) == pytest.approx(0.27, abs=0.03)

    def test_paper_anchor_four_percent(self):
        """Paper: ~70% at 4% churn."""
        assert analytic_failure_rate(0.04, 31) == pytest.approx(0.72, abs=0.05)

    def test_zero_churn(self):
        assert analytic_failure_rate(0.0, 32) == 0.0

    def test_full_churn(self):
        assert analytic_failure_rate(1.0, 32) == 1.0

    def test_monotone_in_churn(self):
        rates = [analytic_failure_rate(rate, 32) for rate in (0.0, 0.01, 0.02, 0.04)]
        assert rates == sorted(rates)

    def test_monotone_in_chain_length(self):
        assert analytic_failure_rate(0.01, 40) > analytic_failure_rate(0.01, 10)

    def test_invalid_arguments(self):
        with pytest.raises(SimulationError):
            analytic_failure_rate(-0.1, 10)
        with pytest.raises(SimulationError):
            analytic_failure_rate(0.1, 0)


class TestMonteCarlo:
    def test_matches_analytic_roughly(self):
        result = simulate_failure_rate(
            num_servers=50,
            churn_rate=0.02,
            security_bits=16,
            trials=10,
            conversations_per_trial=200,
            seed=3,
        )
        assert result.failure_rate == pytest.approx(result.analytic_rate, abs=0.15)

    def test_zero_churn_never_fails(self):
        result = simulate_failure_rate(
            num_servers=30, churn_rate=0.0, security_bits=16, trials=3, conversations_per_trial=50
        )
        assert result.failure_rate == 0.0

    def test_metadata_populated(self):
        result = simulate_failure_rate(
            num_servers=20, churn_rate=0.05, security_bits=8, trials=2, conversations_per_trial=20
        )
        assert result.num_chains == 20
        assert result.trials == 2
        assert 0.0 <= result.failure_rate <= 1.0

    def test_invalid_servers(self):
        with pytest.raises(SimulationError):
            simulate_failure_rate(num_servers=0, churn_rate=0.1)

    def test_deterministic_given_seed(self):
        kwargs = dict(
            num_servers=25, churn_rate=0.03, security_bits=8, trials=3,
            conversations_per_trial=40, seed=9,
        )
        assert simulate_failure_rate(**kwargs).failure_rate == simulate_failure_rate(**kwargs).failure_rate
