"""Tests for the simulated public randomness beacon."""

from repro.crypto.randomness import PublicRandomnessBeacon


class TestBeacon:
    def test_deterministic_per_epoch(self):
        beacon = PublicRandomnessBeacon(seed=b"seed")
        assert beacon.value_for_epoch(3) == beacon.value_for_epoch(3)

    def test_epochs_differ(self):
        beacon = PublicRandomnessBeacon(seed=b"seed")
        assert beacon.value_for_epoch(1) != beacon.value_for_epoch(2)

    def test_seeds_differ(self):
        assert (
            PublicRandomnessBeacon(seed=b"a").value_for_epoch(1)
            != PublicRandomnessBeacon(seed=b"b").value_for_epoch(1)
        )

    def test_everyone_derives_the_same_sample(self):
        """Any participant holding the beacon output gets the same chain sample."""
        population = [f"server-{index}" for index in range(20)]
        one = PublicRandomnessBeacon(seed=b"s").sample_without_replacement(5, population, 7, "chains")
        two = PublicRandomnessBeacon(seed=b"s").sample_without_replacement(5, population, 7, "chains")
        assert one == two
        assert len(set(one)) == 7

    def test_purpose_separates_samples(self):
        beacon = PublicRandomnessBeacon(seed=b"s")
        population = list(range(100))
        assert beacon.sample_without_replacement(1, population, 10, "a") != (
            beacon.sample_without_replacement(1, population, 10, "b")
        )

    def test_shuffle_is_permutation(self):
        beacon = PublicRandomnessBeacon(seed=b"s")
        population = list(range(50))
        shuffled = beacon.shuffled(2, population)
        assert sorted(shuffled) == population
        assert shuffled == beacon.shuffled(2, population)

    def test_rng_for_epoch_reproducible(self):
        beacon = PublicRandomnessBeacon(seed=b"s")
        assert beacon.rng_for_epoch(1, "x").random() == beacon.rng_for_epoch(1, "x").random()
