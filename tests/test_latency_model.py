"""Tests of the latency models against the paper's reported numbers and scaling laws."""

import math

import pytest

from repro.errors import SimulationError
from repro.simulation.latency import (
    blame_latency,
    messages_per_chain,
    xrd_latency,
    xrd_latency_pipeline,
)


class TestChainLoad:
    def test_formula(self):
        # 2M users, 100 chains, ℓ = 14 → 280k messages per chain.
        assert messages_per_chain(2_000_000, 100) == pytest.approx(280_000)

    def test_sqrt_scaling(self):
        """Load per chain scales as ~1/√n (§4.2)."""
        ratio = messages_per_chain(1_000_000, 100) / messages_per_chain(1_000_000, 400)
        assert ratio == pytest.approx(math.sqrt(4), rel=0.15)

    def test_invalid_arguments(self):
        with pytest.raises(SimulationError):
            messages_per_chain(-1, 10)
        with pytest.raises(SimulationError):
            messages_per_chain(10, 0)


class TestPaperAnchors:
    """Figure 4/5 headline numbers should be reproduced within ~10%."""

    @pytest.mark.parametrize(
        "num_users,expected",
        [(1_000_000, 128.0), (2_000_000, 251.0), (4_000_000, 508.0), (8_000_000, 1009.0)],
    )
    def test_figure4_xrd_points(self, num_users, expected):
        latency = xrd_latency(num_users, 100, malicious_fraction=0.2)
        assert latency == pytest.approx(expected, rel=0.10)

    def test_figure5_extrapolation_to_1000_servers(self):
        latency = xrd_latency(2_000_000, 1000, malicious_fraction=0.2)
        assert latency == pytest.approx(84.0, rel=0.15)

    def test_latency_linear_in_users(self):
        one = xrd_latency(1_000_000, 100)
        two = xrd_latency(2_000_000, 100)
        four = xrd_latency(4_000_000, 100)
        assert two / one == pytest.approx(2.0, rel=0.1)
        assert four / two == pytest.approx(2.0, rel=0.1)

    def test_latency_scales_as_inverse_sqrt_servers(self):
        """XRD latency ∝ √(2/N) (ignoring the weak k(N) dependence)."""
        at_100 = xrd_latency(2_000_000, 100)
        at_400 = xrd_latency(2_000_000, 400)
        assert at_100 / at_400 == pytest.approx(2.0, rel=0.2)

    def test_latency_grows_with_f(self):
        latencies = [
            xrd_latency(2_000_000, 100, malicious_fraction=f) for f in (0.1, 0.2, 0.3, 0.4)
        ]
        assert latencies == sorted(latencies)
        # Figure 6 shape: f = 0.4 costs well under 2.5x the f = 0.1 latency at
        # these parameters, but visibly more than f = 0.1.
        assert 1.5 < latencies[-1] / latencies[0] < 3.5


class TestPipelineModel:
    def test_pipeline_close_to_closed_form(self):
        closed = xrd_latency(200_000, 20, malicious_fraction=0.1, security_bits=20)
        pipeline = xrd_latency_pipeline(200_000, 20, malicious_fraction=0.1, security_bits=20)
        # The pipeline model includes contention, so it is at least as large as
        # roughly the per-chain critical path but within a small factor.
        assert pipeline >= 0.5 * closed
        assert pipeline <= 10 * closed

    def test_staggering_helps_or_is_neutral(self):
        staggered = xrd_latency_pipeline(
            100_000, 10, malicious_fraction=0.1, security_bits=16, stagger=True
        )
        aligned = xrd_latency_pipeline(
            100_000, 10, malicious_fraction=0.1, security_bits=16, stagger=False
        )
        assert staggered <= aligned * 1.05


class TestBlameLatency:
    def test_linear_in_malicious_users(self):
        small = blame_latency(5_000)
        large = blame_latency(100_000)
        assert large > small
        # Slope is linear: doubling users roughly doubles the extra latency.
        assert blame_latency(40_000) / blame_latency(20_000) == pytest.approx(2.0, rel=0.2)

    def test_same_order_as_paper(self):
        """Paper: ~13 s at 5k and ~150 s at 100k malicious users (same order here)."""
        assert 1.0 < blame_latency(5_000) < 40.0
        assert 30.0 < blame_latency(100_000) < 400.0

    def test_zero_malicious_users(self):
        assert blame_latency(0) < 5.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            blame_latency(-1)
