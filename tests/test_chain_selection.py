"""Tests for the chain-selection algorithm (§5.3.1) and its invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import chain_selection as cs
from repro.errors import ChainSelectionError


class TestEll:
    def test_small_values(self):
        assert cs.ell_for_chains(1) == 1
        assert cs.ell_for_chains(3) == 2
        assert cs.ell_for_chains(6) == 3
        assert cs.ell_for_chains(100) == 14

    def test_minimal_ell(self):
        """ℓ is the smallest value with ℓ(ℓ+1)/2 ≥ n."""
        for n in range(1, 300):
            ell = cs.ell_for_chains(n)
            assert ell * (ell + 1) // 2 >= n
            if ell > 1:
                assert (ell - 1) * ell // 2 < n

    def test_sqrt2_approximation(self):
        """ℓ ≈ √(2n): within the √2 factor of the √n lower bound (§4.2, §9)."""
        for n in (10, 100, 1000, 5000):
            ell = cs.ell_for_chains(n)
            assert ell >= math.isqrt(n)
            assert ell <= math.ceil(math.sqrt(2 * n)) + 1

    def test_invalid(self):
        with pytest.raises(ChainSelectionError):
            cs.ell_for_chains(0)
        with pytest.raises(ChainSelectionError):
            cs.num_logical_chains(0)

    @given(st.integers(min_value=1, max_value=20000))
    @settings(max_examples=100)
    def test_minimality_property(self, n):
        ell = cs.ell_for_chains(n)
        assert ell * (ell + 1) // 2 >= n
        assert ell == 1 or (ell - 1) * ell // 2 < n


class TestGroupConstruction:
    def test_paper_example_ell_3(self):
        """The ℓ = 3 construction worked out by hand from §5.3.1."""
        sets = cs.build_group_chain_sets(3)
        assert list(sets[0]) == [1, 2, 3]
        assert list(sets[1]) == [1, 4, 5]
        assert list(sets[2]) == [2, 4, 6]
        assert list(sets[3]) == [3, 5, 6]

    def test_number_of_groups_and_sizes(self):
        for ell in range(1, 12):
            sets = cs.build_group_chain_sets(ell)
            assert len(sets) == ell + 1
            assert all(len(chain_set) == ell for chain_set in sets)

    def test_largest_chain_index(self):
        for ell in range(1, 12):
            sets = cs.build_group_chain_sets(ell)
            assert max(max(chain_set) for chain_set in sets) == cs.num_logical_chains(ell)

    def test_all_pairs_intersect_small(self):
        for ell in range(1, 15):
            assert cs.all_pairs_intersect(ell)

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=40)
    def test_all_pairs_intersect_property(self, ell):
        """The core correctness invariant: every pair of groups shares a chain."""
        assert cs.all_pairs_intersect(ell)

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=30)
    def test_every_logical_chain_serves_some_group(self, ell):
        sets = cs.build_group_chain_sets(ell)
        used = set()
        for chain_set in sets:
            used.update(chain_set)
        assert used == set(range(1, cs.num_logical_chains(ell) + 1))

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=30)
    def test_chain_load_balanced(self, ell):
        """Every logical chain is shared by exactly two groups (or one group twice)."""
        sets = cs.build_group_chain_sets(ell)
        counts = {}
        for chain_set in sets:
            for chain in chain_set:
                counts[chain] = counts.get(chain, 0) + 1
        assert max(counts.values()) == 2
        assert min(counts.values()) >= 1


class TestAssignment:
    def test_group_assignment_in_range(self):
        for index in range(50):
            key = bytes([index]) * 32
            assert 0 <= cs.assign_group(key, 7) < 7

    def test_group_assignment_deterministic(self):
        key = b"\x01" * 32
        assert cs.assign_group(key, 10) == cs.assign_group(key, 10)

    def test_group_assignment_roughly_uniform(self):
        keys = [bytes([i % 256, i // 256]) + b"\x00" * 30 for i in range(2000)]
        sizes = cs.group_sizes(keys, 100)  # ℓ(100)=14 → 15 groups
        assert len(sizes) == 15
        expected = 2000 / 15
        assert max(sizes) < 2 * expected
        assert min(sizes) > expected / 2

    def test_invalid_group_count(self):
        with pytest.raises(ChainSelectionError):
            cs.assign_group(b"\x00" * 32, 0)

    def test_chains_for_group_range(self):
        for group_index in range(cs.ell_for_chains(10) + 1):
            chains = cs.chains_for_group(group_index, 10)
            assert len(chains) == cs.ell_for_chains(10)
            assert all(0 <= chain < 10 for chain in chains)

    def test_chains_for_group_out_of_range(self):
        with pytest.raises(ChainSelectionError):
            cs.chains_for_group(99, 10)

    def test_chains_for_user_count(self):
        chains = cs.chains_for_user(b"\x07" * 32, 100)
        assert len(chains) == cs.ell_for_chains(100)


class TestIntersection:
    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=100)
    def test_every_pair_of_users_intersects(self, key_a, key_b, num_chains):
        """Any two users share the chain returned by intersection_chain."""
        chain = cs.intersection_chain(key_a, key_b, num_chains)
        assert chain in cs.chains_for_user(key_a, num_chains)
        assert chain in cs.chains_for_user(key_b, num_chains)

    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=50)
    def test_intersection_symmetric(self, key_a, key_b, num_chains):
        """Both partners independently compute the same chain (the §5.3.2 tie-break)."""
        assert cs.intersection_chain(key_a, key_b, num_chains) == cs.intersection_chain(
            key_b, key_a, num_chains
        )

    def test_same_group_users_intersect(self):
        key = b"\x01" * 32
        assert cs.intersection_chain(key, key, 50) in cs.chains_for_user(key, 50)

    def test_logical_intersection_is_smallest(self):
        key_a, key_b = b"\x01" * 32, b"\x02" * 32
        ell = cs.ell_for_chains(30)
        sets = cs.build_group_chain_sets(ell)
        group_a = cs.assign_group(key_a, ell + 1)
        group_b = cs.assign_group(key_b, ell + 1)
        expected = min(set(sets[group_a]) & set(sets[group_b]))
        assert cs.intersection_logical_chain(key_a, key_b, 30) == expected


class TestLoad:
    def test_expected_chain_load_formula(self):
        assert cs.expected_chain_load(1000, 100) == pytest.approx(1000 * 14 / 100)

    def test_expected_chain_load_scaling(self):
        """Load per chain scales as ~√2·M/√n (§4.2)."""
        load_100 = cs.expected_chain_load(10_000, 100)
        load_400 = cs.expected_chain_load(10_000, 400)
        assert load_100 / load_400 == pytest.approx(math.sqrt(400 / 100), rel=0.2)

    def test_negative_users_rejected(self):
        with pytest.raises(ChainSelectionError):
            cs.expected_chain_load(-1, 10)


class TestAssignmentCacheScale:
    """Regression for the LRU-thrash bug: at populations above the old
    ``maxsize=1 << 16`` bound, the per-round in-order sweep evicted every
    entry one sweep before its next use (~0% hit rate at exactly the scale
    the memoisation was added for).  The caches are unbounded now; a second
    sweep over a >65,536-user population must be pure cache hits.
    """

    POPULATION = (1 << 16) + 512  # strictly above the old cache bound

    def test_second_sweep_hits_cache_above_old_bound(self):
        cs.reset_assignment_caches()
        keys = [index.to_bytes(32, "big") for index in range(self.POPULATION)]
        first = [cs.chains_for_user(key, 30) for key in keys]
        info_after_first = cs._chains_for_user_cached.cache_info()
        assert info_after_first.misses == self.POPULATION
        assert info_after_first.currsize == self.POPULATION
        second = [cs.chains_for_user(key, 30) for key in keys]
        info_after_second = cs._chains_for_user_cached.cache_info()
        assert second == first
        # The whole second sweep must be served from the cache: no user was
        # evicted between her two lookups.
        assert info_after_second.misses == self.POPULATION
        assert info_after_second.hits - info_after_first.hits == self.POPULATION
        cs.reset_assignment_caches()

    def test_reset_assignment_caches_clears_both(self):
        cs.reset_assignment_caches()
        cs.chains_for_user(b"\x01" * 32, 12)
        cs.intersection_logical_chain(b"\x01" * 32, b"\x02" * 32, 12)
        assert cs._chains_for_user_cached.cache_info().currsize == 1
        assert cs.intersection_logical_chain.cache_info().currsize == 1
        cs.reset_assignment_caches()
        assert cs._chains_for_user_cached.cache_info().currsize == 0
        assert cs.intersection_logical_chain.cache_info().currsize == 0
