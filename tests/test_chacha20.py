"""RFC 8439 test vectors and behaviour tests for the ChaCha20 implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import chacha20
from repro.errors import CryptoError

RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")
RFC_BLOCK_1 = bytes.fromhex(
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
    "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
)

SUNSCREEN = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)
SUNSCREEN_KEY = bytes(range(32))
SUNSCREEN_NONCE = bytes.fromhex("000000000000004a00000000")
SUNSCREEN_CIPHERTEXT = bytes.fromhex(
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
    "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
    "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
    "5af90bbf74a35be6b40b8eedf2785e42874d"
)


class TestBlockFunction:
    def test_rfc8439_block_vector(self):
        block = chacha20.chacha20_block(RFC_KEY, 1, RFC_NONCE)
        assert block == RFC_BLOCK_1

    def test_block_is_64_bytes(self):
        assert len(chacha20.chacha20_block(b"\x00" * 32, 0, b"\x00" * 12)) == 64

    def test_counter_changes_block(self):
        one = chacha20.chacha20_block(RFC_KEY, 1, RFC_NONCE)
        two = chacha20.chacha20_block(RFC_KEY, 2, RFC_NONCE)
        assert one != two

    def test_invalid_key_length(self):
        with pytest.raises(CryptoError):
            chacha20.chacha20_block(b"short", 0, RFC_NONCE)

    def test_invalid_nonce_length(self):
        with pytest.raises(CryptoError):
            chacha20.chacha20_block(RFC_KEY, 0, b"short")

    def test_invalid_counter(self):
        with pytest.raises(CryptoError):
            chacha20.chacha20_block(RFC_KEY, 2**32, RFC_NONCE)


class TestEncryption:
    def test_rfc8439_sunscreen_vector(self):
        ciphertext = chacha20.chacha20_encrypt(
            SUNSCREEN_KEY, SUNSCREEN_NONCE, SUNSCREEN, initial_counter=1
        )
        assert ciphertext == SUNSCREEN_CIPHERTEXT

    def test_encrypt_decrypt_roundtrip(self):
        data = b"attack at dawn" * 10
        ciphertext = chacha20.chacha20_encrypt(RFC_KEY, RFC_NONCE, data)
        assert chacha20.chacha20_decrypt(RFC_KEY, RFC_NONCE, ciphertext) == data

    def test_empty_plaintext(self):
        assert chacha20.chacha20_encrypt(RFC_KEY, RFC_NONCE, b"") == b""

    def test_keystream_prefix_property(self):
        long = chacha20.chacha20_keystream(RFC_KEY, RFC_NONCE, 200)
        short = chacha20.chacha20_keystream(RFC_KEY, RFC_NONCE, 64)
        assert long[:64] == short

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=30)
    def test_roundtrip_property(self, data):
        ciphertext = chacha20.chacha20_encrypt(RFC_KEY, RFC_NONCE, data)
        assert len(ciphertext) == len(data)
        assert chacha20.chacha20_decrypt(RFC_KEY, RFC_NONCE, ciphertext) == data
