"""Tests for HKDF and the XRD key schedules."""

import hashlib
import hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import kdf
from repro.errors import CryptoError


class TestHKDF:
    def test_rfc5869_test_case_1(self):
        # RFC 5869 A.1: SHA-256, 22-byte IKM of 0x0b, 13-byte salt, 10-byte info.
        ikm = b"\x0b" * 22
        salt = bytes(range(13))
        info = bytes(range(0xF0, 0xFA))
        prk = kdf.hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = kdf.hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_extract_with_empty_salt(self):
        prk = kdf.hkdf_extract(b"", b"input")
        expected = hmac.new(b"\x00" * 32, b"input", hashlib.sha256).digest()
        assert prk == expected

    def test_expand_lengths(self):
        prk = kdf.hkdf_extract(b"salt", b"secret")
        for length in (1, 16, 32, 33, 64, 100):
            assert len(kdf.hkdf_expand(prk, b"info", length)) == length

    def test_expand_too_long_rejected(self):
        with pytest.raises(CryptoError):
            kdf.hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    def test_expand_prefix_property(self):
        prk = kdf.hkdf_extract(b"salt", b"secret")
        assert kdf.hkdf_expand(prk, b"info", 64)[:32] == kdf.hkdf_expand(prk, b"info", 32)

    @given(st.binary(min_size=0, max_size=64), st.binary(min_size=0, max_size=64))
    @settings(max_examples=30)
    def test_deterministic(self, salt, ikm):
        assert kdf.hkdf_extract(salt, ikm) == kdf.hkdf_extract(salt, ikm)


class TestDeriveKey:
    def test_label_separation(self):
        secret = b"shared secret"
        assert kdf.derive_key(secret, b"label-a") != kdf.derive_key(secret, b"label-b")

    def test_context_separation(self):
        secret = b"shared secret"
        assert kdf.derive_key(secret, b"l", b"ctx1") != kdf.derive_key(secret, b"l", b"ctx2")

    def test_default_length(self):
        assert len(kdf.derive_key(b"s", b"l")) == 32

    def test_shared_key_from_element(self):
        key = kdf.shared_key_from_element(b"\x01" * 32, b"label")
        assert len(key) == 32


class TestXRDKeySchedules:
    def test_loopback_key_per_chain(self):
        secret = b"\x42" * 32
        assert kdf.loopback_key(secret, 1) != kdf.loopback_key(secret, 2)
        assert kdf.loopback_key(secret, 1) == kdf.loopback_key(secret, 1)

    def test_loopback_key_per_user(self):
        assert kdf.loopback_key(b"\x01" * 32, 1) != kdf.loopback_key(b"\x02" * 32, 1)

    def test_conversation_key_directional(self):
        shared = b"\x07" * 32
        to_alice = kdf.conversation_key(shared, b"alice-pk")
        to_bob = kdf.conversation_key(shared, b"bob-pk")
        assert to_alice != to_bob
        assert len(to_alice) == 32

    def test_nonce_from_round(self):
        assert kdf.nonce_from_round(0) == b"\x00" * 12
        assert kdf.nonce_from_round(1)[-1] == 1
        assert len(kdf.nonce_from_round(2**32)) == 12

    def test_nonce_rejects_negative(self):
        with pytest.raises(CryptoError):
            kdf.nonce_from_round(-1)
