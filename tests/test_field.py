"""Unit and property tests for the modular-arithmetic helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import field
from repro.errors import CryptoError

P25519 = 2**255 - 19


class TestInverseMod:
    def test_small_known_inverse(self):
        assert field.inverse_mod(3, 7) == 5

    def test_inverse_roundtrip(self):
        value = 123456789
        inverse = field.inverse_mod(value, P25519)
        assert (value * inverse) % P25519 == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(CryptoError):
            field.inverse_mod(0, 17)

    def test_negative_modulus_rejected(self):
        with pytest.raises(CryptoError):
            field.inverse_mod(3, -5)

    @given(st.integers(min_value=1, max_value=P25519 - 1))
    @settings(max_examples=30)
    def test_inverse_property(self, value):
        assert (value * field.inverse_mod(value, P25519)) % P25519 == 1


class TestSqrtMod:
    def test_square_roundtrip(self):
        value = 987654321
        square = (value * value) % P25519
        root = field.sqrt_mod_p58(square, P25519)
        assert (root * root) % P25519 == square

    def test_requires_p_5_mod_8(self):
        with pytest.raises(CryptoError):
            field.sqrt_mod_p58(4, 7)

    def test_non_residue_rejected(self):
        # 2 is a non-residue mod p25519 (p ≡ 5 mod 8 and 2^((p-1)/2) = -1).
        with pytest.raises(CryptoError):
            field.sqrt_mod_p58(2, P25519)

    @given(st.integers(min_value=1, max_value=2**64))
    @settings(max_examples=30)
    def test_sqrt_of_squares(self, value):
        square = (value * value) % P25519
        root = field.sqrt_mod_p58(square, P25519)
        assert (root * root) % P25519 == square


class TestPrimality:
    @pytest.mark.parametrize("prime", [2, 3, 5, 17, 101, 7919, 2**61 - 1])
    def test_known_primes(self, prime):
        assert field.is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 9, 561, 41041, 2**64])
    def test_known_composites(self, composite):
        assert not field.is_probable_prime(composite)

    def test_ed25519_prime_is_prime(self):
        assert field.is_probable_prime(P25519)


class TestSafePrimes:
    def test_safe_prime_structure(self):
        prime = field.find_safe_prime(64)
        assert field.is_probable_prime(prime)
        assert field.is_probable_prime((prime - 1) // 2)
        assert prime.bit_length() >= 63

    def test_deterministic(self):
        assert field.find_safe_prime(64) == field.find_safe_prime(64)

    def test_different_seeds_differ(self):
        assert field.find_safe_prime(64, seed="a") != field.find_safe_prime(64, seed="b")

    def test_rejects_tiny_and_huge(self):
        with pytest.raises(CryptoError):
            field.find_safe_prime(4)
        with pytest.raises(CryptoError):
            field.find_safe_prime(1024)

    def test_generator_has_prime_order(self):
        prime = field.find_safe_prime(64)
        order = (prime - 1) // 2
        generator = field.find_generator_of_prime_subgroup(prime)
        assert pow(generator, order, prime) == 1
        assert generator not in (0, 1, prime - 1)


class TestByteCodecs:
    def test_roundtrip(self):
        assert field.bytes_to_int(field.int_to_bytes(123456, 8)) == 123456

    def test_fixed_width(self):
        assert len(field.int_to_bytes(1, 32)) == 32

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    @settings(max_examples=30)
    def test_roundtrip_property(self, value):
        assert field.bytes_to_int(field.int_to_bytes(value, 16)) == value
