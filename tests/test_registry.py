"""The typed component registry and the stringly-knob deprecation shim."""

import warnings

import pytest

from repro.coordinator.network import Deployment, DeploymentConfig
from repro.errors import ConfigurationError
from repro.registry import (
    EXECUTION_BACKENDS,
    POPULATIONS,
    TRANSPORTS,
    ExecutionBackendKind,
    PopulationKind,
    TransportKind,
)
from repro.transport import InProcTransport, make_transport


def make_config(**kwargs):
    defaults = dict(
        num_servers=4,
        num_users=4,
        num_chains=2,
        chain_length=2,
        seed=3,
        group_kind="modp",
    )
    defaults.update(kwargs)
    return DeploymentConfig(**defaults)


class TestEnums:
    def test_str_subclass_equality_keeps_old_comparisons_working(self):
        assert TransportKind.INPROC == "inproc"
        assert ExecutionBackendKind.MULTIPROCESS == "multiprocess"
        assert PopulationKind.BATCHED == "batched"
        assert TransportKind.TCP.value == "tcp"

    def test_builtins_are_registered(self):
        for kind in TransportKind:
            assert TRANSPORTS.is_known(kind)
        for kind in ExecutionBackendKind:
            assert EXECUTION_BACKENDS.is_known(kind)
        for kind in PopulationKind:
            assert POPULATIONS.is_known(kind)

    def test_keys_lists_the_builtins(self):
        assert set(k.value for k in TransportKind) <= set(TRANSPORTS.keys())


class TestDeprecationShim:
    def test_builtin_string_coerces_with_exactly_one_warning(self):
        with pytest.warns(DeprecationWarning, match="TransportKind.INPROC") as caught:
            value = TRANSPORTS.coerce("inproc", field="transport")
        assert value is TransportKind.INPROC
        assert len(caught) == 1

    def test_stringly_config_warns_once_per_knob(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            make_config(transport="inproc")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "transport" in str(deprecations[0].message)

    def test_enum_knobs_warn_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = make_config(
                transport=TransportKind.INPROC,
                execution_backend=ExecutionBackendKind.SERIAL,
                population=PopulationKind.OBJECT,
            )
        assert config.transport is TransportKind.INPROC
        assert config.execution_backend is ExecutionBackendKind.SERIAL
        assert config.population is PopulationKind.OBJECT

    def test_deprecated_strings_still_build_a_working_deployment(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            config = make_config(
                transport="inproc", execution_backend="serial", population="object"
            )
        deployment = Deployment.create(config)
        report = deployment.run_round()
        assert report.round_number == 1
        deployment.close()

    def test_unknown_string_passes_coerce_but_fails_validate(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            # Not a builtin: passes through silently (might be third-party)…
            assert TRANSPORTS.coerce("carrier-pigeon", field="transport") == "carrier-pigeon"
        # …but the validation gate rejects it if nothing registered it.
        with pytest.raises(ConfigurationError, match="transport"):
            make_config(transport="carrier-pigeon").validate()


class TestRegistration:
    def test_custom_component_end_to_end(self):
        calls = []

        def factory(**kwargs):
            calls.append(kwargs)
            return InProcTransport()

        TRANSPORTS.register("test-custom-transport", factory)
        try:
            assert TRANSPORTS.is_known("test-custom-transport")
            # A registered third-party name is accepted by the config with
            # no deprecation warning (the shim only claims builtin names).
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                config = make_config(transport="test-custom-transport")
            transport = make_transport(config.transport, group=None)
            assert isinstance(transport, InProcTransport)
            assert calls, "the registered factory was never invoked"
        finally:
            TRANSPORTS._factories.pop("test-custom-transport", None)

    def test_duplicate_registration_is_refused(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            TRANSPORTS.register(TransportKind.INPROC, lambda **kwargs: None)

    def test_replace_true_allows_override(self):
        original = TRANSPORTS._factories[TransportKind.INPROC.value]
        try:
            TRANSPORTS.register(
                TransportKind.INPROC, lambda **kwargs: InProcTransport(), replace=True
            )
        finally:
            TRANSPORTS.register(TransportKind.INPROC, original, replace=True)

    def test_non_callable_factory_is_refused(self):
        with pytest.raises(ConfigurationError, match="not callable"):
            TRANSPORTS.register("test-not-callable", "nope")

    def test_create_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown transport"):
            TRANSPORTS.create("never-registered")

    def test_ensure_known_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="registered"):
            EXECUTION_BACKENDS.ensure_known("never-registered", field="execution_backend")
