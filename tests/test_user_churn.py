"""Tests for user churn and cover messages (§5.3.3)."""

from repro.client.user import ReceivedMessage

from tests.conftest import make_deployment


class TestCoverMessages:
    def test_cover_store_populated_each_round(self):
        deployment = make_deployment()
        deployment.run_round()
        assert set(deployment._cover_store) == {user.name for user in deployment.users}

    def test_offline_idle_user_covers_played(self):
        """An idle user going offline is invisible: her covers keep her pattern intact."""
        deployment = make_deployment()
        target = deployment.users[2].name
        deployment.run_round()
        report = deployment.run_round(offline_users=[target])
        assert target in report.used_cover_for
        # Every *other* user still observes a full mailbox; the offline user's
        # mailbox still received her loopback covers (observable uniformity).
        mailbox_count = deployment.mailboxes.get(
            report.round_number, deployment.user(target).public_bytes
        )
        assert len(mailbox_count) == deployment.ell()

    def test_offline_partner_notifies_and_reverts(self):
        deployment = make_deployment()
        alice, bob = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(alice, bob)
        deployment.run_round(payloads={alice: b"hi", bob: b"hi"})
        report = deployment.run_round(payloads={bob: b"still there?"}, offline_users=[alice])
        notices = [
            message
            for message in report.delivered[bob]
            if message.kind == ReceivedMessage.KIND_OFFLINE_NOTICE
        ]
        assert len(notices) == 1
        assert not deployment.user(bob).conversation.active
        # Next round both sides send only loopbacks; counts stay uniform.
        follow_up = deployment.run_round()
        assert set(follow_up.mailbox_counts.values()) == {deployment.ell()}
        assert follow_up.conversation_payloads(bob) == []

    def test_mailbox_counts_unchanged_by_offline_partner(self):
        """The §5.3.3 motivation: without covers Bob's mailbox count would drop."""
        deployment = make_deployment()
        alice, bob = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(alice, bob)
        deployment.run_round(payloads={alice: b"hi", bob: b"hi"})
        report = deployment.run_round(payloads={bob: b"?"}, offline_users=[alice])
        online_counts = {
            name: count for name, count in report.mailbox_counts.items() if name != alice
        }
        assert set(online_counts.values()) == {deployment.ell()}

    def test_offline_without_covers_breaks_uniformity(self):
        """Ablation: with cover messages disabled, churn becomes observable."""
        deployment = make_deployment(use_cover_messages=False)
        alice, bob = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(alice, bob)
        deployment.run_round(payloads={alice: b"hi", bob: b"hi"})
        report = deployment.run_round(payloads={bob: b"?"}, offline_users=[alice])
        counts = {name: count for name, count in report.mailbox_counts.items() if name != alice}
        # Bob's count differs from other online users' counts → the leak the
        # paper's cover messages exist to prevent.
        assert len(set(counts.values())) > 1

    def test_user_offline_two_consecutive_rounds(self):
        """Covers exist only for the first missed round; afterwards the user is simply absent."""
        deployment = make_deployment()
        target = deployment.users[3].name
        deployment.run_round()
        first = deployment.run_round(offline_users=[target])
        assert target in first.used_cover_for
        second = deployment.run_round(offline_users=[target])
        assert target not in second.used_cover_for
        assert target in second.offline_users

    def test_returning_user_resumes_loopbacks(self):
        deployment = make_deployment()
        target = deployment.users[1].name
        deployment.run_round()
        deployment.run_round(offline_users=[target])
        report = deployment.run_round()
        kinds = {message.kind for message in report.delivered[target]}
        assert kinds == {ReceivedMessage.KIND_LOOPBACK}
        assert report.mailbox_counts[target] == deployment.ell()
