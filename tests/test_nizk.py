"""Tests for the Schnorr and Chaum-Pedersen NIZKs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.nizk import (
    DleqProof,
    SchnorrProof,
    prove_dleq,
    prove_dlog,
    require_valid_dleq,
    require_valid_dlog,
    verify_dleq,
    verify_dlog,
)
from repro.errors import ProofError


class TestSchnorr:
    def test_completeness(self, group):
        secret = group.random_scalar()
        proof = prove_dlog(group, group.base(), secret, b"ctx")
        assert verify_dlog(group, group.base(), group.base_mult(secret), proof, b"ctx")

    def test_wrong_statement_rejected(self, group):
        secret = group.random_scalar()
        proof = prove_dlog(group, group.base(), secret, b"ctx")
        wrong_public = group.base_mult(group.random_scalar())
        assert not verify_dlog(group, group.base(), wrong_public, proof, b"ctx")

    def test_context_binding(self, group):
        secret = group.random_scalar()
        proof = prove_dlog(group, group.base(), secret, b"round-1")
        public = group.base_mult(secret)
        assert not verify_dlog(group, group.base(), public, proof, b"round-2")

    def test_arbitrary_base(self, group):
        base = group.base_mult(group.random_scalar())
        secret = group.random_scalar()
        proof = prove_dlog(group, base, secret, b"ctx")
        assert verify_dlog(group, base, group.scalar_mult(base, secret), proof, b"ctx")

    def test_tampered_response_rejected(self, group):
        secret = group.random_scalar()
        proof = prove_dlog(group, group.base(), secret)
        bad = SchnorrProof(commitment=proof.commitment, response=(proof.response + 1) % group.order)
        assert not verify_dlog(group, group.base(), group.base_mult(secret), bad)

    def test_garbage_commitment_rejected(self, group):
        secret = group.random_scalar()
        proof = prove_dlog(group, group.base(), secret)
        bad = SchnorrProof(commitment=b"\xff" * len(proof.commitment), response=proof.response)
        assert not verify_dlog(group, group.base(), group.base_mult(secret), bad)

    def test_require_helper(self, group):
        secret = group.random_scalar()
        proof = prove_dlog(group, group.base(), secret)
        require_valid_dlog(group, group.base(), group.base_mult(secret), proof)
        with pytest.raises(ProofError):
            require_valid_dlog(group, group.base(), group.base_mult(secret + 1), proof)

    def test_serialisation(self, group):
        proof = prove_dlog(group, group.base(), group.random_scalar())
        assert len(proof.to_bytes(group)) == len(proof.commitment) + group.scalar_size

    @given(st.integers(min_value=1, max_value=2**60))
    @settings(max_examples=20)
    def test_completeness_property(self, group, secret):
        secret %= group.order
        if secret == 0:
            secret = 1
        proof = prove_dlog(group, group.base(), secret, b"p")
        assert verify_dlog(group, group.base(), group.base_mult(secret), proof, b"p")


class TestDleq:
    def test_completeness(self, group):
        secret = group.random_scalar()
        base1 = group.base()
        base2 = group.base_mult(group.random_scalar())
        proof = prove_dleq(group, base1, base2, secret, b"ctx")
        assert verify_dleq(
            group,
            base1,
            group.scalar_mult(base1, secret),
            base2,
            group.scalar_mult(base2, secret),
            proof,
            b"ctx",
        )

    def test_different_exponents_rejected(self, group):
        secret = group.random_scalar()
        other = (secret + 1) % group.order
        base1, base2 = group.base(), group.base_mult(group.random_scalar())
        proof = prove_dleq(group, base1, base2, secret, b"ctx")
        assert not verify_dleq(
            group,
            base1,
            group.scalar_mult(base1, secret),
            base2,
            group.scalar_mult(base2, other),
            proof,
            b"ctx",
        )

    def test_context_binding(self, group):
        secret = group.random_scalar()
        base1, base2 = group.base(), group.base_mult(3)
        proof = prove_dleq(group, base1, base2, secret, b"chain-0")
        assert not verify_dleq(
            group,
            base1,
            group.scalar_mult(base1, secret),
            base2,
            group.scalar_mult(base2, secret),
            proof,
            b"chain-1",
        )

    def test_swapped_statement_rejected(self, group):
        secret = group.random_scalar()
        base1, base2 = group.base(), group.base_mult(5)
        proof = prove_dleq(group, base1, base2, secret, b"ctx")
        assert not verify_dleq(
            group,
            base2,
            group.scalar_mult(base2, secret),
            base1,
            group.scalar_mult(base1, secret),
            proof,
            b"ctx",
        )

    def test_tampered_proof_rejected(self, group):
        secret = group.random_scalar()
        base1, base2 = group.base(), group.base_mult(7)
        proof = prove_dleq(group, base1, base2, secret)
        bad = DleqProof(
            commitment1=proof.commitment1,
            commitment2=proof.commitment2,
            response=(proof.response + 1) % group.order,
        )
        assert not verify_dleq(
            group,
            base1,
            group.scalar_mult(base1, secret),
            base2,
            group.scalar_mult(base2, secret),
            bad,
        )

    def test_garbage_commitments_rejected(self, group):
        secret = group.random_scalar()
        base1, base2 = group.base(), group.base_mult(7)
        proof = prove_dleq(group, base1, base2, secret)
        bad = DleqProof(commitment1=b"\xff" * 32, commitment2=proof.commitment2, response=proof.response)
        assert not verify_dleq(
            group,
            base1,
            group.scalar_mult(base1, secret),
            base2,
            group.scalar_mult(base2, secret),
            bad,
        )

    def test_require_helper(self, group):
        secret = group.random_scalar()
        base1, base2 = group.base(), group.base_mult(11)
        proof = prove_dleq(group, base1, base2, secret)
        require_valid_dleq(
            group,
            base1,
            group.scalar_mult(base1, secret),
            base2,
            group.scalar_mult(base2, secret),
            proof,
        )
        with pytest.raises(ProofError):
            require_valid_dleq(
                group,
                base1,
                group.scalar_mult(base1, secret),
                base2,
                base2,
                proof,
            )

    def test_serialisation(self, group):
        proof = prove_dleq(group, group.base(), group.base_mult(2), group.random_scalar())
        assert len(proof.to_bytes(group)) == 2 * group.element_size + group.scalar_size

    def test_aggregate_blinding_statement(self, group):
        """The exact statement AHS servers prove: Σ outputs = bsk · Σ inputs."""
        blinding_secret = group.random_scalar()
        inputs = [group.base_mult(group.random_scalar()) for _ in range(5)]
        outputs = [group.scalar_mult(point, blinding_secret) for point in inputs]
        input_aggregate = group.sum(inputs)
        output_aggregate = group.sum(outputs)
        base_point = group.base()
        blinding_public = group.scalar_mult(base_point, blinding_secret)
        proof = prove_dleq(group, input_aggregate, base_point, blinding_secret, b"mix")
        assert verify_dleq(
            group, input_aggregate, output_aggregate, base_point, blinding_public, proof, b"mix"
        )
