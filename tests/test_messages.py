"""Tests for the fixed-size wire formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import GROUP_ELEMENT_SIZE, PAYLOAD_SIZE
from repro.crypto.nizk import prove_dlog
from repro.errors import CryptoError, DecodingError
from repro.mixnet import messages
from repro.mixnet.messages import (
    BatchEntry,
    ClientSubmission,
    MailboxMessage,
    MessageBody,
    batch_digest,
    mailbox_message_size,
    split_into_payload_chunks,
)

KEY = b"\x05" * 32
RECIPIENT = b"\x09" * GROUP_ELEMENT_SIZE


class TestMessageBody:
    def test_data_roundtrip(self):
        body = MessageBody.data(b"hi there")
        decoded = MessageBody.decode(body.encode())
        assert decoded.kind == messages.KIND_DATA
        assert decoded.content == b"hi there"

    def test_loopback_and_offline(self):
        assert MessageBody.decode(MessageBody.loopback().encode()).is_loopback()
        assert MessageBody.decode(MessageBody.offline_notice().encode()).is_offline_notice()

    def test_encoded_size_fixed(self):
        assert len(MessageBody.data(b"x").encode()) == PAYLOAD_SIZE
        assert len(MessageBody.loopback().encode()) == PAYLOAD_SIZE

    def test_unknown_kind_rejected(self):
        with pytest.raises(CryptoError):
            MessageBody(kind=99, content=b"").encode()

    def test_empty_body_rejected_on_decode(self):
        with pytest.raises(DecodingError):
            MessageBody.decode(b"\x00\x00" + b"\x00" * 10)

    @given(st.binary(min_size=0, max_size=PAYLOAD_SIZE - 3))
    @settings(max_examples=30)
    def test_data_roundtrip_property(self, content):
        assert MessageBody.decode(MessageBody.data(content).encode()).content == content


class TestMailboxMessage:
    def test_seal_and_open(self):
        message = MailboxMessage.seal(RECIPIENT, KEY, 3, MessageBody.data(b"hello"))
        body = message.open(KEY, 3)
        assert body is not None and body.content == b"hello"

    def test_open_with_wrong_key(self):
        message = MailboxMessage.seal(RECIPIENT, KEY, 3, MessageBody.data(b"hello"))
        assert message.open(b"\x06" * 32, 3) is None

    def test_open_with_wrong_round(self):
        message = MailboxMessage.seal(RECIPIENT, KEY, 3, MessageBody.data(b"hello"))
        assert message.open(KEY, 4) is None

    def test_fixed_wire_size(self):
        short = MailboxMessage.seal(RECIPIENT, KEY, 1, MessageBody.data(b"a"))
        long = MailboxMessage.seal(RECIPIENT, KEY, 1, MessageBody.data(b"a" * 200))
        assert len(short) == len(long) == mailbox_message_size()

    def test_serialisation_roundtrip(self):
        message = MailboxMessage.seal(RECIPIENT, KEY, 1, MessageBody.data(b"x"))
        restored = MailboxMessage.from_bytes(message.to_bytes())
        assert restored == message

    def test_invalid_recipient_length(self):
        with pytest.raises(CryptoError):
            MailboxMessage.seal(b"short", KEY, 1, MessageBody.data(b"x"))

    def test_from_bytes_too_short(self):
        with pytest.raises(DecodingError):
            MailboxMessage.from_bytes(b"tiny")


class TestClientSubmission:
    def test_wire_size_accounting(self, group):
        secret = group.random_scalar()
        proof = prove_dlog(group, group.base(), secret)
        submission = ClientSubmission(
            chain_id=2,
            sender="alice",
            dh_public=group.encode(group.base_mult(secret)),
            ciphertext=b"c" * 100,
            proof=proof,
        )
        assert submission.wire_size() == len(submission.to_bytes())
        assert submission.wire_size() > 100 + 32

    def test_cover_flag_default(self, group):
        proof = prove_dlog(group, group.base(), group.random_scalar())
        submission = ClientSubmission(1, "bob", b"\x00" * 32, b"ct", proof)
        assert submission.cover is False


class TestBatchDigest:
    def test_order_independent(self, group):
        entries = [
            BatchEntry(group.base_mult(index + 1), bytes([index]) * 4) for index in range(4)
        ]
        assert batch_digest(group, entries) == batch_digest(group, list(reversed(entries)))

    def test_content_sensitive(self, group):
        entries = [BatchEntry(group.base_mult(1), b"aaaa")]
        other = [BatchEntry(group.base_mult(1), b"aaab")]
        assert batch_digest(group, entries) != batch_digest(group, other)

    def test_empty_batch(self, group):
        assert len(batch_digest(group, [])) == 32


class TestChunking:
    def test_small_message_single_chunk(self):
        assert split_into_payload_chunks(b"hello") == [b"hello"]

    def test_empty_message(self):
        assert split_into_payload_chunks(b"") == [b""]

    def test_large_message_splits_and_reassembles(self):
        data = bytes(range(256)) * 5
        chunks = split_into_payload_chunks(data)
        assert len(chunks) > 1
        assert b"".join(chunks) == data
        assert all(len(chunk) <= PAYLOAD_SIZE - 3 for chunk in chunks)

    def test_tiny_payload_size_rejected(self):
        with pytest.raises(CryptoError):
            split_into_payload_chunks(b"data", payload_size=3)
