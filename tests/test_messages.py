"""Tests for the fixed-size wire formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import (
    AEAD_TAG_SIZE,
    GROUP_ELEMENT_SIZE,
    PAYLOAD_SIZE,
    SCALAR_SIZE,
    SENDER_FIELD_SIZE,
    SUBMISSION_OVERHEAD,
)
from repro.crypto.nizk import prove_dlog
from repro.errors import CryptoError, DecodingError
from repro.mixnet import messages
from repro.mixnet.messages import (
    BatchEntry,
    ClientSubmission,
    MailboxMessage,
    MessageBody,
    batch_digest,
    mailbox_message_size,
    split_into_payload_chunks,
)

KEY = b"\x05" * 32
RECIPIENT = b"\x09" * GROUP_ELEMENT_SIZE


class TestMessageBody:
    def test_data_roundtrip(self):
        body = MessageBody.data(b"hi there")
        decoded = MessageBody.decode(body.encode())
        assert decoded.kind == messages.KIND_DATA
        assert decoded.content == b"hi there"

    def test_loopback_and_offline(self):
        assert MessageBody.decode(MessageBody.loopback().encode()).is_loopback()
        assert MessageBody.decode(MessageBody.offline_notice().encode()).is_offline_notice()

    def test_encoded_size_fixed(self):
        assert len(MessageBody.data(b"x").encode()) == PAYLOAD_SIZE
        assert len(MessageBody.loopback().encode()) == PAYLOAD_SIZE

    def test_unknown_kind_rejected(self):
        with pytest.raises(CryptoError):
            MessageBody(kind=99, content=b"").encode()

    def test_empty_body_rejected_on_decode(self):
        with pytest.raises(DecodingError):
            MessageBody.decode(b"\x00\x00" + b"\x00" * 10)

    @given(st.binary(min_size=0, max_size=PAYLOAD_SIZE - 3))
    @settings(max_examples=30)
    def test_data_roundtrip_property(self, content):
        assert MessageBody.decode(MessageBody.data(content).encode()).content == content


class TestMailboxMessage:
    def test_seal_and_open(self):
        message = MailboxMessage.seal(RECIPIENT, KEY, 3, MessageBody.data(b"hello"))
        body = message.open(KEY, 3)
        assert body is not None and body.content == b"hello"

    def test_open_with_wrong_key(self):
        message = MailboxMessage.seal(RECIPIENT, KEY, 3, MessageBody.data(b"hello"))
        assert message.open(b"\x06" * 32, 3) is None

    def test_open_with_wrong_round(self):
        message = MailboxMessage.seal(RECIPIENT, KEY, 3, MessageBody.data(b"hello"))
        assert message.open(KEY, 4) is None

    def test_fixed_wire_size(self):
        short = MailboxMessage.seal(RECIPIENT, KEY, 1, MessageBody.data(b"a"))
        long = MailboxMessage.seal(RECIPIENT, KEY, 1, MessageBody.data(b"a" * 200))
        assert len(short) == len(long) == mailbox_message_size()

    def test_wire_size_against_constants(self):
        assert mailbox_message_size() == GROUP_ELEMENT_SIZE + PAYLOAD_SIZE + AEAD_TAG_SIZE
        message = MailboxMessage.seal(RECIPIENT, KEY, 1, MessageBody.data(b"x"))
        assert len(message.to_bytes()) == mailbox_message_size()

    def test_serialisation_roundtrip(self):
        message = MailboxMessage.seal(RECIPIENT, KEY, 1, MessageBody.data(b"x"))
        restored = MailboxMessage.from_bytes(message.to_bytes())
        assert restored == message

    def test_invalid_recipient_length(self):
        with pytest.raises(CryptoError):
            MailboxMessage.seal(b"short", KEY, 1, MessageBody.data(b"x"))

    def test_from_bytes_too_short(self):
        with pytest.raises(DecodingError):
            MailboxMessage.from_bytes(b"tiny")


class TestClientSubmission:
    @staticmethod
    def make(group, sender="alice", chain_id=2, ciphertext=b"c" * 100):
        secret = group.random_scalar()
        proof = prove_dlog(group, group.base(), secret)
        return ClientSubmission(
            chain_id=chain_id,
            sender=sender,
            dh_public=group.encode(group.base_mult(secret)),
            ciphertext=ciphertext,
            proof=proof,
        )

    def test_wire_size_accounting(self, group):
        submission = self.make(group)
        assert submission.wire_size() == len(submission.to_bytes())
        assert submission.wire_size() > 100 + 32

    def test_wire_size_against_constants(self, group):
        """``wire_size = SUBMISSION_OVERHEAD + |X| + |ciphertext|`` exactly."""
        submission = self.make(group, ciphertext=b"c" * 321)
        assert submission.wire_size() == SUBMISSION_OVERHEAD + GROUP_ELEMENT_SIZE + 321
        assert SUBMISSION_OVERHEAD == 4 + 2 + SENDER_FIELD_SIZE + GROUP_ELEMENT_SIZE + SCALAR_SIZE

    def test_wire_size_independent_of_sender_name(self, group):
        """The padded sender field keeps submissions uniform across users."""
        short = self.make(group, sender="a")
        long = self.make(group, sender="user-123456789")
        assert short.wire_size() == long.wire_size()

    def test_round_trip(self, group):
        submission = self.make(group, sender="user-7", chain_id=11)
        decoded = ClientSubmission.from_bytes(
            submission.to_bytes(), element_size=group.element_size
        )
        assert decoded == submission

    def test_round_trip_empty_sender_and_ciphertext(self, group):
        submission = self.make(group, sender="", ciphertext=b"")
        decoded = ClientSubmission.from_bytes(submission.to_bytes())
        assert decoded == submission

    def test_oversized_sender_rejected(self, group):
        submission = self.make(group, sender="x" * (SENDER_FIELD_SIZE + 1))
        with pytest.raises(CryptoError):
            submission.to_bytes()

    def test_from_bytes_too_short(self):
        with pytest.raises(DecodingError):
            ClientSubmission.from_bytes(b"\x00" * 10)

    def test_from_bytes_bogus_sender_length(self, group):
        wire = bytearray(self.make(group).to_bytes())
        wire[4:6] = (SENDER_FIELD_SIZE + 1).to_bytes(2, "big")
        with pytest.raises(DecodingError):
            ClientSubmission.from_bytes(bytes(wire))

    def test_from_bytes_non_utf8_sender(self, group):
        """Malformed input raises DecodingError, never UnicodeDecodeError."""
        wire = bytearray(self.make(group, sender="ab").to_bytes())
        wire[6] = 0x80
        with pytest.raises(DecodingError):
            ClientSubmission.from_bytes(bytes(wire))

    def test_cover_flag_default(self, group):
        proof = prove_dlog(group, group.base(), group.random_scalar())
        submission = ClientSubmission(1, "bob", b"\x00" * 32, b"ct", proof)
        assert submission.cover is False

    def test_cover_flag_not_on_the_wire(self, group):
        """Covers must be indistinguishable from other submissions (§5.3.3)."""
        submission = self.make(group)
        cover = ClientSubmission(
            chain_id=submission.chain_id,
            sender=submission.sender,
            dh_public=submission.dh_public,
            ciphertext=submission.ciphertext,
            proof=submission.proof,
            cover=True,
        )
        assert cover.to_bytes() == submission.to_bytes()
        assert ClientSubmission.from_bytes(cover.to_bytes()).cover is False


class TestBatchEntry:
    def test_round_trip(self, group):
        entry = BatchEntry(dh_public=group.base_mult(7), ciphertext=b"xyz" * 11)
        decoded = BatchEntry.from_bytes(group, entry.to_bytes(group))
        assert decoded == entry

    def test_wire_size_against_constants(self, group):
        entry = BatchEntry(dh_public=group.base_mult(3), ciphertext=b"c" * 40)
        assert len(entry.to_bytes(group)) == GROUP_ELEMENT_SIZE + 4 + 40

    def test_empty_ciphertext(self, group):
        entry = BatchEntry(dh_public=group.base_mult(2), ciphertext=b"")
        assert BatchEntry.from_bytes(group, entry.to_bytes(group)) == entry

    def test_concatenated_entries_read_in_sequence(self, group):
        entries = [
            BatchEntry(dh_public=group.base_mult(index + 1), ciphertext=bytes([index]) * index)
            for index in range(5)
        ]
        blob = b"".join(entry.to_bytes(group) for entry in entries)
        offset, decoded = 0, []
        while offset < len(blob):
            entry, offset = BatchEntry.read_from(group, blob, offset)
            decoded.append(entry)
        assert decoded == entries

    def test_truncation_rejected(self, group):
        wire = BatchEntry(dh_public=group.base_mult(5), ciphertext=b"c" * 10).to_bytes(group)
        with pytest.raises(DecodingError):
            BatchEntry.from_bytes(group, wire[:-1])
        with pytest.raises(DecodingError):
            BatchEntry.from_bytes(group, wire + b"\x00")


class TestBatchDigest:
    def test_order_independent(self, group):
        entries = [
            BatchEntry(group.base_mult(index + 1), bytes([index]) * 4) for index in range(4)
        ]
        assert batch_digest(group, entries) == batch_digest(group, list(reversed(entries)))

    def test_content_sensitive(self, group):
        entries = [BatchEntry(group.base_mult(1), b"aaaa")]
        other = [BatchEntry(group.base_mult(1), b"aaab")]
        assert batch_digest(group, entries) != batch_digest(group, other)

    def test_empty_batch(self, group):
        assert len(batch_digest(group, [])) == 32


class TestChunking:
    def test_small_message_single_chunk(self):
        assert split_into_payload_chunks(b"hello") == [b"hello"]

    def test_empty_message(self):
        assert split_into_payload_chunks(b"") == [b""]

    def test_large_message_splits_and_reassembles(self):
        data = bytes(range(256)) * 5
        chunks = split_into_payload_chunks(data)
        assert len(chunks) > 1
        assert b"".join(chunks) == data
        assert all(len(chunk) <= PAYLOAD_SIZE - 3 for chunk in chunks)

    def test_tiny_payload_size_rejected(self):
        with pytest.raises(CryptoError):
            split_into_payload_chunks(b"data", payload_size=3)
