"""Robustness tests: malformed and adversarial inputs fail closed.

Every decoding path that touches attacker-controlled bytes must either return
a well-typed failure (``(False, None)`` / ``None``) or raise an exception
from the library's own hierarchy — never deliver garbage and never crash with
an unrelated exception.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import adec
from repro.crypto.group import Ed25519Group, ModPGroup
from repro.crypto.onion import InnerEnvelope, decrypt_baseline_layer, unpad_payload
from repro.errors import XRDError
from repro.mixnet.messages import MailboxMessage, MessageBody

ED = Ed25519Group()
MODP = ModPGroup(bits=96)


class TestGroupDecodingFailsClosed:
    @given(st.binary(min_size=32, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_ed25519_decode_returns_point_or_xrd_error(self, data):
        try:
            point = ED.decode(data)
        except XRDError:
            return
        # If the decode succeeded the point must round-trip consistently.
        assert ED.decode(ED.encode(point)) == point

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=40)
    def test_modp_decode_never_crashes_unexpectedly(self, data):
        try:
            element = MODP.decode(data)
        except XRDError:
            return
        assert 1 <= element < MODP.prime

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=40)
    def test_scalar_decoding(self, data):
        try:
            scalar = ED.decode_scalar(data)
        except XRDError:
            return
        assert 0 <= scalar < ED.order


class TestCiphertextParsingFailsClosed:
    @given(st.binary(min_size=0, max_size=400), st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=40)
    def test_adec_garbage(self, data, round_number):
        assert adec(b"\x01" * 32, round_number, data) in ((False, None),) or adec(
            b"\x01" * 32, round_number, data
        )[0] is False

    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=40)
    def test_mailbox_message_parsing(self, data):
        try:
            message = MailboxMessage.from_bytes(data)
        except XRDError:
            return
        # Parsing may succeed structurally, but opening with any key fails.
        assert message.open(b"\x02" * 32, 1) is None

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=40)
    def test_inner_envelope_parsing(self, data):
        try:
            envelope = InnerEnvelope.from_bytes(data)
        except XRDError:
            return
        assert len(envelope.ephemeral_public) == 32

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=40)
    def test_baseline_layer_decryption_garbage(self, data):
        ok, plaintext = decrypt_baseline_layer(MODP, MODP.random_scalar(), 1, data)
        assert ok is False and plaintext is None

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=40)
    def test_unpad_garbage(self, data):
        try:
            payload = unpad_payload(data)
        except XRDError:
            return
        assert len(payload) <= len(data)

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=40)
    def test_message_body_decode_garbage(self, data):
        try:
            body = MessageBody.decode(data)
        except XRDError:
            return
        assert isinstance(body.kind, int)


class TestErrorHierarchy:
    def test_all_library_errors_share_base(self):
        from repro import errors

        subclasses = [
            errors.CryptoError,
            errors.DecodingError,
            errors.AuthenticationError,
            errors.ProofError,
            errors.ProtocolError,
            errors.ConfigurationError,
            errors.ChainSelectionError,
            errors.MixingError,
            errors.BlameError,
            errors.MailboxError,
            errors.SimulationError,
        ]
        for subclass in subclasses:
            assert issubclass(subclass, errors.XRDError)

    def test_catching_base_class_is_sufficient(self, group):
        with pytest.raises(XRDError):
            group.decode(b"\x00")
