"""Tests for the baseline (non-AHS) mix chain of §5 / Algorithm 1."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.crypto.onion import encrypt_onion_baseline
from repro.errors import ProtocolError
from repro.mixnet.messages import MailboxMessage, MessageBody
from repro.mixnet.server import BaselineMixChain, BaselineMixServer


def build_baseline_chain(group, length=3, seed=5):
    servers = [
        BaselineMixServer(f"server-{index}", group, random.Random(seed + index))
        for index in range(length)
    ]
    return BaselineMixChain(chain_id=0, servers=servers, group=group)


def make_onion(group, chain, round_number, recipient, key, content=b"hi"):
    mailbox_message = MailboxMessage.seal(recipient, key, round_number, MessageBody.data(content))
    return encrypt_onion_baseline(
        group, chain.mixing_public_keys(), round_number, mailbox_message.to_bytes()
    )


class TestBaselineChain:
    def test_round_delivers_all_messages(self, group):
        chain = build_baseline_chain(group)
        recipients = [KeyPair.generate(group) for _ in range(4)]
        onions = [
            make_onion(group, chain, 1, keypair.public_bytes, b"\x01" * 32, f"msg-{i}".encode())
            for i, keypair in enumerate(recipients)
        ]
        result = chain.run_round(1, onions)
        assert len(result.mailbox_messages) == 4
        assert result.dropped == 0
        assert {m.recipient for m in result.mailbox_messages} == {
            k.public_bytes for k in recipients
        }

    def test_messages_decrypt_correctly(self, group):
        chain = build_baseline_chain(group, length=2)
        recipient = KeyPair.generate(group)
        onion = make_onion(group, chain, 2, recipient.public_bytes, b"\x02" * 32, b"secret")
        result = chain.run_round(2, [onion])
        body = result.mailbox_messages[0].open(b"\x02" * 32, 2)
        assert body is not None and body.content == b"secret"

    def test_shuffling_changes_order(self, group):
        chain = build_baseline_chain(group, length=2, seed=9)
        recipients = [KeyPair.generate(group) for _ in range(10)]
        onions = [
            make_onion(group, chain, 1, keypair.public_bytes, b"\x03" * 32)
            for keypair in recipients
        ]
        result = chain.run_round(1, onions)
        delivered = [m.recipient for m in result.mailbox_messages]
        submitted = [k.public_bytes for k in recipients]
        assert sorted(delivered) == sorted(submitted)
        assert delivered != submitted

    def test_garbage_input_dropped_silently(self, group):
        """The baseline design just drops bad inputs — no detection, no blame."""
        chain = build_baseline_chain(group)
        recipient = KeyPair.generate(group)
        good = make_onion(group, chain, 1, recipient.public_bytes, b"\x04" * 32)
        result = chain.run_round(1, [good, b"\xff" * 200])
        assert len(result.mailbox_messages) == 1
        assert result.dropped == 1

    def test_wrong_round_dropped(self, group):
        chain = build_baseline_chain(group)
        recipient = KeyPair.generate(group)
        onion = make_onion(group, chain, 1, recipient.public_bytes, b"\x05" * 32)
        result = chain.run_round(2, [onion])
        assert result.dropped >= 1
        assert result.mailbox_messages == []

    def test_empty_chain_rejected(self, group):
        with pytest.raises(ProtocolError):
            BaselineMixChain(0, [], group)

    def test_single_server_process(self, group):
        server = BaselineMixServer("s", group, random.Random(0))
        chain = BaselineMixChain(0, [server], group)
        recipient = KeyPair.generate(group)
        onion = make_onion(group, chain, 1, recipient.public_bytes, b"\x06" * 32)
        outputs, failed = server.process(1, [onion])
        assert failed == []
        assert len(outputs) == 1

    def test_len(self, group):
        assert len(build_baseline_chain(group, length=4)) == 4
