"""Tests for the functional two-server PIR store (the Pung-style substrate)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pung import TwoServerPIRStore, mailbox_label
from repro.errors import ConfigurationError, SimulationError


class TestStoreBasics:
    def test_put_and_retrieve(self):
        store = TwoServerPIRStore(row_size=64)
        store.put(b"alice", b"message for alice")
        store.put(b"bob", b"message for bob")
        assert store.retrieve(b"alice").rstrip(b"\x00") == b"message for alice"
        assert store.retrieve(b"bob").rstrip(b"\x00") == b"message for bob"

    def test_overwrite(self):
        store = TwoServerPIRStore(row_size=32)
        store.put(b"alice", b"v1")
        store.put(b"alice", b"v2")
        assert len(store) == 1
        assert store.retrieve(b"alice").rstrip(b"\x00") == b"v2"

    def test_unknown_label(self):
        store = TwoServerPIRStore()
        with pytest.raises(ConfigurationError):
            store.index_of(b"ghost")

    def test_oversized_value_rejected(self):
        store = TwoServerPIRStore(row_size=8)
        with pytest.raises(ConfigurationError):
            store.put(b"k", b"x" * 9)

    def test_invalid_row_size(self):
        with pytest.raises(ConfigurationError):
            TwoServerPIRStore(row_size=0)


class TestPIRProtocol:
    def test_query_vectors_differ_in_exactly_one_bit(self):
        store = TwoServerPIRStore(row_size=16)
        for index in range(10):
            store.put(b"key-%d" % index, b"value-%d" % index)
        query = store.build_query(3, rng=random.Random(0))
        difference = bytes(a ^ b for a, b in zip(query.vector_a, query.vector_b))
        assert sum(bin(byte).count("1") for byte in difference) == 1
        assert difference[3 // 8] == 1 << (3 % 8)

    def test_each_query_scans_whole_table(self):
        """The structural property that limits Pung: per-query work ∝ table size."""
        store = TwoServerPIRStore(row_size=16)
        for index in range(20):
            store.put(b"key-%d" % index, b"v")
        store.retrieve(b"key-7")
        assert store.queries_served == 2  # two servers answered
        assert store.rows_scanned == 2 * 20

    def test_single_answer_reveals_nothing_definite(self):
        """Each individual selection vector is uniformly random (independent of index)."""
        store = TwoServerPIRStore(row_size=16)
        for index in range(8):
            store.put(b"key-%d" % index, b"v%d" % index)
        rng = random.Random(7)
        query_for_0 = store.build_query(0, rng=rng)
        rng = random.Random(7)
        query_for_5 = store.build_query(5, rng=rng)
        # Server A's view (vector_a) is identical regardless of which row the
        # client wants — it learns nothing from its half of the query.
        assert query_for_0.vector_a == query_for_5.vector_a
        assert query_for_0.vector_b != query_for_5.vector_b

    def test_decode_requires_matching_sizes(self):
        from repro.baselines.pung import PIRAnswer

        with pytest.raises(SimulationError):
            TwoServerPIRStore.decode(PIRAnswer(b"ab"), PIRAnswer(b"abc"))

    def test_out_of_range_index(self):
        store = TwoServerPIRStore()
        store.put(b"k", b"v")
        with pytest.raises(ConfigurationError):
            store.build_query(5)

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=20)
    def test_retrieval_correct_for_any_row(self, table_size, seed):
        store = TwoServerPIRStore(row_size=24)
        for index in range(table_size):
            store.put(b"label-%d" % index, b"row-%d" % index)
        rng = random.Random(seed)
        target = rng.randrange(table_size)
        value = store.retrieve(b"label-%d" % target, rng=rng)
        assert value.rstrip(b"\x00") == b"row-%d" % target


class TestMailboxLabels:
    def test_labels_distinct_per_round(self):
        assert mailbox_label(b"\x01" * 32, 1) != mailbox_label(b"\x01" * 32, 2)

    def test_labels_distinct_per_recipient(self):
        assert mailbox_label(b"\x01" * 32, 1) != mailbox_label(b"\x02" * 32, 1)
