"""Tests for the Atom / Pung / Stadium cost models and the shared interface."""

import pytest

from repro.baselines import AtomModel, PungModel, StadiumModel, XRDModel
from repro.baselines.common import SystemModel
from repro.errors import ConfigurationError, SimulationError


class TestInterface:
    def test_estimate_bundles_fields(self):
        estimate = AtomModel().estimate(1_000_000, 100)
        assert estimate.system == "Atom"
        assert estimate.latency_seconds > 0
        assert estimate.user_bandwidth_bytes > 0
        assert estimate.user_compute_seconds > 0

    def test_sweeps(self):
        model = StadiumModel()
        by_users = model.sweep_users([1_000_000, 2_000_000], 100)
        assert set(by_users) == {1_000_000, 2_000_000}
        by_servers = model.sweep_servers(1_000_000, [100, 200])
        assert set(by_servers) == {100, 200}

    def test_invalid_point_rejected(self):
        with pytest.raises(SimulationError):
            AtomModel().estimate(-1, 100)

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            SystemModel().latency(1, 1)


class TestAtom:
    def test_paper_anchor(self):
        """Paper: Atom ≈ 12x slower than XRD's 128 s at 1M users / 100 servers."""
        assert AtomModel().latency(1_000_000, 100) == pytest.approx(1532, rel=0.05)

    def test_scales_inverse_in_servers(self):
        atom = AtomModel()
        work_100 = atom.latency(2_000_000, 100) - atom.ROUTE_HOPS * atom.PER_HOP_LATENCY
        work_200 = atom.latency(2_000_000, 200) - atom.ROUTE_HOPS * atom.PER_HOP_LATENCY
        assert work_100 / work_200 == pytest.approx(2.0, rel=0.01)

    def test_malicious_user_protection_slowdown(self):
        assert AtomModel(protect_against_malicious_users=True).latency(1_000_000, 100) == (
            pytest.approx(4 * AtomModel().latency(1_000_000, 100))
        )

    def test_fault_tolerance_slowdown(self):
        assert AtomModel().fault_tolerance_slowdown(0.01) == pytest.approx(1.1)

    def test_user_costs_flat_in_servers(self):
        atom = AtomModel()
        assert atom.user_bandwidth(1_000_000, 100) == atom.user_bandwidth(1_000_000, 2000)


class TestPung:
    def test_paper_anchors(self):
        pung = PungModel("xpir")
        assert pung.latency(1_000_000, 100) == pytest.approx(272, rel=0.05)
        assert pung.latency(2_000_000, 100) == pytest.approx(927, rel=0.05)

    def test_superlinear_in_users(self):
        pung = PungModel("xpir")
        ratio = pung.latency(4_000_000, 100) / pung.latency(2_000_000, 100)
        assert ratio > 2.5  # superlinear growth (§8.2)

    def test_bandwidth_anchors(self):
        pung = PungModel("xpir")
        assert pung.user_bandwidth(1_000_000, 100) == pytest.approx(5.8e6, rel=0.01)
        assert pung.user_bandwidth(4_000_000, 100) == pytest.approx(11.6e6, rel=0.01)

    def test_sealpir_compresses_bandwidth(self):
        assert PungModel("sealpir").user_bandwidth(1_000_000, 100) < 0.05 * PungModel(
            "xpir"
        ).user_bandwidth(1_000_000, 100)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            PungModel("fastpir")


class TestStadium:
    def test_paper_anchors(self):
        stadium = StadiumModel()
        assert stadium.latency(1_000_000, 100) == pytest.approx(64, rel=0.05)
        assert stadium.latency(2_000_000, 100) == pytest.approx(138, rel=0.05)

    def test_latency_floor_at_many_servers(self):
        stadium = StadiumModel()
        assert stadium.latency(1_000_000, 100_000) >= stadium.CHAIN_LENGTH * stadium.PER_HOP_LATENCY

    def test_f_sensitivity_superlinear(self):
        stadium = StadiumModel()
        base = stadium.latency_vs_f(2_000_000, 100, 0.2)
        high = stadium.latency_vs_f(2_000_000, 100, 0.4)
        assert high / base > (54 / 31)  # more than the linear chain-length ratio


class TestHeadlineRelationships:
    """The comparative claims from the abstract and §8.2."""

    def test_xrd_faster_than_atom_and_pung_at_100_servers(self):
        xrd = XRDModel()
        for users in (1_000_000, 2_000_000, 4_000_000):
            assert xrd.latency(users, 100) < AtomModel().latency(users, 100)
            assert xrd.latency(users, 100) < PungModel("xpir").latency(users, 100)

    def test_xrd_slower_than_stadium(self):
        xrd = XRDModel()
        stadium = StadiumModel()
        assert xrd.latency(2_000_000, 100) > stadium.latency(2_000_000, 100)

    def test_speedup_factors_match_paper(self):
        xrd = XRDModel().latency(2_000_000, 100)
        assert AtomModel().latency(2_000_000, 100) / xrd == pytest.approx(12, rel=0.15)
        assert PungModel("xpir").latency(2_000_000, 100) / xrd == pytest.approx(3.7, rel=0.15)

    def test_performance_gap_grows_with_users(self):
        """Pung's gap to XRD widens with more users (superlinear vs linear)."""
        xrd = XRDModel()
        pung = PungModel("xpir")
        gap_2m = pung.latency(2_000_000, 100) / xrd.latency(2_000_000, 100)
        gap_4m = pung.latency(4_000_000, 100) / xrd.latency(4_000_000, 100)
        assert gap_4m > gap_2m

    def test_baselines_catch_up_with_enough_servers(self):
        """Prior systems scale as 1/N vs XRD's 1/√N, so they catch up eventually (§8.2)."""
        xrd = XRDModel()
        pung = PungModel("xpir")
        atom = AtomModel()
        # Pung crosses over at roughly a thousand servers (paper estimate: ~1000).
        assert xrd.latency(2_000_000, 100) < pung.latency(2_000_000, 100)
        assert pung.latency(2_000_000, 4000) < xrd.latency(2_000_000, 4000)
        # Atom's gap shrinks by an order of magnitude between 100 and 3000
        # servers (its fixed 300-hop route keeps a latency floor in our model,
        # so unlike the paper's rough estimate it never fully crosses over).
        gap_100 = atom.latency(2_000_000, 100) / xrd.latency(2_000_000, 100)
        gap_3000 = atom.latency(2_000_000, 3000) / xrd.latency(2_000_000, 3000)
        assert gap_100 > 10
        assert gap_3000 < 3

    def test_xrd_users_pay_more_bandwidth_than_stadium_and_atom(self):
        """XRD's horizontal scalability comes at higher user cost (§8.1)."""
        xrd = XRDModel()
        assert xrd.user_bandwidth(1_000_000, 1000) > StadiumModel().user_bandwidth(1_000_000, 1000)
        assert xrd.user_bandwidth(1_000_000, 1000) > AtomModel().user_bandwidth(1_000_000, 1000)
        # But far less than Pung with XPIR.
        assert xrd.user_bandwidth(1_000_000, 1000) < PungModel("xpir").user_bandwidth(1_000_000, 1000)
