"""The distributed runner: control protocol, role handlers, and harness.

The heavyweight test here is the in-process distributed parity run: three
live :class:`~repro.runner.roles.RoleNode` replicas (two mix, one mailbox)
behind real TCP listeners, driven by :func:`~repro.runner.harness.
run_coordinator` through the acceptance scenario — tamper, blame, recovery
— and compared bit-for-bit against the ordinary in-process
:class:`~repro.faults.runner.ScenarioRunner`.  The subprocess flavour of
the same comparison lives in ``tests/test_engine_parity.py`` under the
``distributed`` marker.
"""

import io
import json
import os
import socket
import tempfile
import threading
import time
from contextlib import redirect_stdout

import pytest

from repro.coordinator.network import Deployment, DeploymentConfig
from repro.errors import ConfigurationError, DecodingError, TransportError
from repro.faults.plan import (
    MODE_TAMPER_CIPHERTEXT,
    USER_INVALID_PROOF,
    FaultPlan,
    ServerFault,
    UserFault,
)
from repro.faults.runner import ScenarioRunner
from repro.faults.scenarios import tamper_and_recover
from repro.mixnet.messages import MailboxMessage
from repro.registry import TransportKind
from repro.runner import protocol
from repro.runner.__main__ import _parse_listen, main
from repro.runner.harness import MAILBOX_ROLE, default_owners, run_coordinator
from repro.runner.roles import RoleNode
from repro.transport.envelope import (
    MAILBOX_DELIVERY,
    MAILBOX_FETCH,
    SUBMISSION,
    Envelope,
)
from repro.transport.faulty import DROP, LinkFault
from repro.transport.tcp import TcpTransport


def make_config(**kwargs):
    defaults = dict(
        num_servers=4,
        num_users=6,
        num_chains=3,
        chain_length=2,
        seed=42,
        group_kind="modp",
        max_workers=2,
    )
    defaults.update(kwargs)
    return DeploymentConfig(**defaults)


class TestControlCodec:
    def test_split_control_round_trip(self):
        assert protocol.split_control(protocol.encode_control(protocol.OP_MIX, b"xyz")) == (
            protocol.OP_MIX,
            b"xyz",
        )

    def test_split_control_empty_is_rejected(self):
        with pytest.raises(DecodingError, match="empty control body"):
            protocol.split_control(b"")

    def test_json_control_round_trip(self):
        op, payload = protocol.split_control(
            protocol.encode_json_control(protocol.OP_PEERS, {"b": 2, "a": 1})
        )
        assert op == protocol.OP_PEERS
        assert protocol.decode_json_payload(payload) == {"a": 1, "b": 2}

    def test_malformed_json_is_rejected(self):
        with pytest.raises(DecodingError, match="malformed control JSON"):
            protocol.decode_json_payload(b"{nope")
        with pytest.raises(DecodingError, match="malformed control JSON"):
            protocol.decode_json_payload(b"\xff\xfe")

    def test_mix_request_round_trip(self):
        wire = protocol.encode_mix_request(3, 17, False, b"batch-bytes")
        assert protocol.decode_mix_request(wire) == (3, 17, False, b"batch-bytes")
        wire = protocol.encode_mix_request(0, 1, True, b"")
        assert protocol.decode_mix_request(wire) == (0, 1, True, b"")

    def test_mix_request_truncation_is_rejected(self):
        wire = protocol.encode_mix_request(3, 17, True, b"")
        for cut in range(len(wire)):
            with pytest.raises(DecodingError, match="truncated mix request"):
                protocol.decode_mix_request(wire[:cut])


class TestRunSpecCodec:
    def test_config_round_trip(self):
        config = make_config(transport=TransportKind.TCP)
        data = json.loads(json.dumps(protocol.config_to_dict(config), sort_keys=True))
        rebuilt = protocol.config_from_dict(data)
        assert rebuilt == config
        assert rebuilt.transport is TransportKind.TCP

    def test_config_digest_is_stable_and_sensitive(self):
        digest = protocol.config_digest(make_config())
        assert digest == protocol.config_digest(make_config())
        assert len(digest) == 32
        assert digest != protocol.config_digest(make_config(seed=43))
        # Enum knob and its deprecated string spelling digest identically
        # (str-subclass enums serialise to their value).
        assert protocol.config_digest(
            make_config(transport=TransportKind.INPROC)
        ) == protocol.config_digest(make_config())

    def test_plan_round_trip(self):
        plan = FaultPlan(
            name="round-trip",
            num_rounds=3,
            server_faults=(
                ServerFault(
                    round_number=2, chain_id=1, position=0, mode=MODE_TAMPER_CIPHERTEXT
                ),
            ),
            user_faults=(
                UserFault(
                    round_number=1, chain_id=0, sender="user-1", kind=USER_INVALID_PROOF
                ),
            ),
            link_faults=(
                LinkFault(behaviour=DROP, kind=SUBMISSION, rounds=frozenset({2, 3})),
                LinkFault(behaviour=DROP, kind=SUBMISSION, source="user-0"),
            ),
            conversations=(("user-0", "user-1"),),
            payloads={2: {"user-0": b"\x00\xffhello"}},
            offline={3: frozenset({"user-2", "user-0"})},
            seed=9,
        )
        data = json.loads(json.dumps(protocol.plan_to_dict(plan), sort_keys=True))
        assert protocol.plan_from_dict(data) == plan

    def test_acceptance_plan_survives_the_file_format(self):
        plan = tamper_and_recover()
        data = json.loads(json.dumps(protocol.plan_to_dict(plan), sort_keys=True))
        assert protocol.plan_from_dict(data) == plan


class TestScenarioSummary:
    def test_summary_carries_the_parity_instruments(self):
        config = make_config()
        deployment = Deployment.create(config)
        try:
            report = ScenarioRunner(deployment, tamper_and_recover()).run()
        finally:
            deployment.close()
        summary = protocol.scenario_summary(report)
        assert summary["plan"] == report.plan_name
        assert summary["canonical"] == report.canonical_bytes().hex()
        assert len(summary["rounds"]) == len(report.rounds)
        for outcome, entry in zip(report.rounds, summary["rounds"]):
            assert entry["fingerprint"] == outcome.fingerprint.hex()
            assert entry["round"] == outcome.round_number
        assert summary["evicted_servers"] == ["server-0"]
        assert summary["recoveries"], "the acceptance plan must trigger a recovery"
        # The whole summary is a JSON value (the harness writes it to disk).
        json.dumps(summary)


class TestDefaultOwners:
    def test_standard_localhost_layout(self):
        config = make_config()
        owners = default_owners(config, num_mix=2)
        assert owners["server-0"] == "mix-0"
        assert owners["server-1"] == "mix-1"
        assert owners["server-2"] == "mix-0"
        assert owners["mailbox-hub"] == MAILBOX_ROLE
        for index in range(config.num_mailbox_servers):
            assert owners[f"mailbox-{index}"] == MAILBOX_ROLE
        # Users deliberately have no owner: fetch routing falls back to the
        # envelope's source, the authoritative mailbox side.
        assert not any(name.startswith("user-") for name in owners)

    def test_at_least_one_mix_role(self):
        with pytest.raises(ConfigurationError, match="at least one mix role"):
            default_owners(make_config(), num_mix=0)


class TestDeploymentContextManager:
    def test_enter_returns_self_and_exit_closes_the_transport(self):
        config = make_config(num_users=2, num_chains=1)
        with Deployment.create(config) as deployment:
            assert isinstance(deployment, Deployment)
            transport = TcpTransport(deployment.group, node_name="ctx")
            deployment.use_transport(transport)
        assert transport._closed
        with pytest.raises(TransportError, match="closed"):
            transport.request("ctx", 3, b"")


def in_process_cluster(config, num_mix=2):
    """Live RoleNodes for the standard layout; returns (nodes, peers, owners)."""
    nodes = [RoleNode(f"mix-{i}", config, "mix") for i in range(num_mix)]
    nodes.append(RoleNode(MAILBOX_ROLE, config, "mailbox"))
    peers = {node.name: node.address for node in nodes}
    return nodes, peers, default_owners(config, num_mix)


class TestDistributedInProcess:
    def test_parity_with_the_scenario_runner_reference(self):
        config = make_config()
        plan = tamper_and_recover()

        reference_deployment = Deployment.create(config)
        try:
            reference = ScenarioRunner(reference_deployment, plan).run()
        finally:
            reference_deployment.close()

        nodes, peers, owners = in_process_cluster(config)
        try:
            distributed = run_coordinator(config, plan, peers, owners)
        finally:
            for node in nodes:
                node.close()

        assert protocol.scenario_summary(distributed) == protocol.scenario_summary(
            reference
        )
        assert distributed.canonical_bytes() == reference.canonical_bytes()
        # The plan's whole arc survived distribution: a blame round halted
        # the tampered chain, and recovery evicted the tampering server.
        statuses = {
            outcome.round_number: outcome.statuses for outcome in distributed.rounds
        }
        assert statuses[2][0] == "halted-blame"
        assert distributed.evicted_servers == ["server-0"]
        # SHUTDOWN was broadcast: every role saw it.
        for node in nodes:
            assert node.wait_for_shutdown(timeout=5)

    def test_mix_rpc_on_the_mailbox_role_is_refused_over_the_wire(self):
        config = make_config(num_users=2, num_chains=1)
        with RoleNode(MAILBOX_ROLE, config, "mailbox") as node:
            client = TcpTransport(
                node.deployment.group,
                node_name="probe",
                config_digest=protocol.config_digest(config),
            )
            try:
                client.set_peers({MAILBOX_ROLE: node.address}, {})
                with pytest.raises(TransportError, match="does not execute chain mixing"):
                    client.control(
                        MAILBOX_ROLE,
                        protocol.encode_control(
                            protocol.OP_MIX, protocol.encode_mix_request(0, 1, True, b"")
                        ),
                    )
                with pytest.raises(TransportError, match="unknown control opcode"):
                    client.control(MAILBOX_ROLE, protocol.encode_control(200))
            finally:
                client.close()

    def test_mailbox_role_answers_fetches_from_its_own_state(self):
        config = make_config(num_users=2, num_chains=1)
        with RoleNode(MAILBOX_ROLE, config, "mailbox") as node:
            client_deployment = Deployment.create(config)
            client = TcpTransport(
                client_deployment.group,
                node_name="probe",
                config_digest=protocol.config_digest(config),
            )
            try:
                owners = {"mailbox-hub": MAILBOX_ROLE}
                for index in range(config.num_mailbox_servers):
                    owners[f"mailbox-{index}"] = MAILBOX_ROLE
                client.set_peers({MAILBOX_ROLE: node.address}, owners)
                user = client_deployment.users[0]
                message = MailboxMessage(
                    recipient=user.public_bytes, sealed_body=b"s" * 24
                )
                delivery = Envelope(
                    kind=MAILBOX_DELIVERY,
                    source="chain-0",
                    destination="mailbox-hub",
                    round_number=1,
                    payload=[message],
                )
                client.deliver(delivery)
                # The client's own hub never saw the delivery…
                assert client_deployment.mailboxes.get(1, user.public_bytes) == []
                # …but a fetch through the socket returns it: the reply came
                # from the role's hub, not an echo of the request.
                fetch = Envelope(
                    kind=MAILBOX_FETCH,
                    source="mailbox-hub",
                    destination=user.name,
                    round_number=1,
                    payload=[],
                )
                assert client.deliver(fetch) == [message]
                assert node.deployment.mailboxes.get(1, user.public_bytes) == [message]
            finally:
                client.close()
                client_deployment.close()

    def test_role_node_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown role kind"):
            RoleNode("x-0", make_config(), "auditor")


class TestLaunchCli:
    def test_role_process_body_and_coordinator_body(self):
        """Drive ``main()`` for both a role and the coordinator in-process.

        Role bodies run on threads with preassigned ports (``sys.stdout``
        is process-global, so the READY lines can't be read per-thread the
        way the subprocess harness reads per-child stdout); the coordinator
        body then drives the acceptance plan against them and its written
        report must match the in-process reference.
        """
        config = make_config()
        plan = tamper_and_recover(num_rounds=3)
        ports = {}
        for name in ("mix-0", "mix-1", MAILBOX_ROLE):
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            ports[name] = probe.getsockname()[1]
            probe.close()
        roles = [("mix-0", "mix"), ("mix-1", "mix"), (MAILBOX_ROLE, "mailbox")]
        with tempfile.TemporaryDirectory(prefix="xrd-cli-") as workdir:
            config_path = os.path.join(workdir, "config.json")
            with open(config_path, "w") as handle:
                json.dump(protocol.config_to_dict(config), handle)
            plan_path = os.path.join(workdir, "plan.json")
            with open(plan_path, "w") as handle:
                json.dump(protocol.plan_to_dict(plan), handle)
            peers_path = os.path.join(workdir, "peers.json")
            with open(peers_path, "w") as handle:
                json.dump(
                    {
                        "peers": {
                            name: ["127.0.0.1", port] for name, port in ports.items()
                        },
                        "owners": default_owners(config, 2),
                    },
                    handle,
                )
            report_path = os.path.join(workdir, "report.json")

            with redirect_stdout(io.StringIO()):
                threads = []
                for name, kind in roles:
                    thread = threading.Thread(
                        target=main,
                        args=(
                            ["--role", kind, "--name", name, "--config", config_path,
                             "--listen", f"127.0.0.1:{ports[name]}"],
                        ),
                        daemon=True,
                    )
                    thread.start()
                    threads.append(thread)

                deadline = time.monotonic() + 60
                for name, port in ports.items():
                    while True:
                        assert time.monotonic() < deadline, f"{name} never listened"
                        try:
                            socket.create_connection(("127.0.0.1", port), 0.5).close()
                            break
                        except OSError:
                            time.sleep(0.05)

                status = main(
                    ["--role", "coordinator", "--config", config_path,
                     "--spec", plan_path, "--peers", peers_path,
                     "--report", report_path]
                )
            assert status == 0
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive(), "role thread survived SHUTDOWN"

            with open(report_path) as handle:
                summary = json.load(handle)

        reference_deployment = Deployment.create(config)
        try:
            reference = ScenarioRunner(reference_deployment, plan).run()
        finally:
            reference_deployment.close()
        assert summary == protocol.scenario_summary(reference)

    def test_bad_listen_spec_is_rejected(self):
        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            _parse_listen("8080")
