"""Shared fixtures for the XRD reproduction test suite.

Most protocol tests run on the small ``ModPGroup`` (fast, insecure — test
only); the Ed25519 group is exercised directly by the crypto tests and by one
end-to-end integration test so the default production path is covered too.
"""

from __future__ import annotations

import random

import pytest

from repro.coordinator.network import Deployment, DeploymentConfig
from repro.crypto.group import Ed25519Group, ModPGroup


@pytest.fixture(scope="session")
def group():
    """The fast modular test group used by most protocol tests."""
    return ModPGroup(bits=96)

@pytest.fixture(scope="session")
def ed_group():
    """The real edwards25519 group."""
    return Ed25519Group()


@pytest.fixture
def rng():
    """A deterministic PRNG for reproducible tests."""
    return random.Random(1234)


def make_deployment(
    num_servers: int = 4,
    num_users: int = 6,
    num_chains: int = 3,
    chain_length: int = 2,
    seed: int = 42,
    group_kind: str = "modp",
    **kwargs,
) -> Deployment:
    """Build a small deterministic deployment on the fast test group."""
    config = DeploymentConfig(
        num_servers=num_servers,
        num_users=num_users,
        num_chains=num_chains,
        chain_length=chain_length,
        seed=seed,
        group_kind=group_kind,
        **kwargs,
    )
    return Deployment.create(config)


@pytest.fixture
def deployment():
    """A default small deployment (4 servers, 3 chains of length 2, 6 users)."""
    return make_deployment()


@pytest.fixture
def deployment_long_chains():
    """A deployment with 3-server chains, used by tampering/blame tests."""
    return make_deployment(num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=7)
