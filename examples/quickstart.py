#!/usr/bin/env python3
"""Quickstart: a tiny XRD deployment exchanging one round of private messages.

This example builds a four-server network with three anytrust mix chains,
registers eight users, starts a conversation between Alice and Bob, and runs
two full communication rounds — exercising chain selection, loopback and
conversation messages, the aggregate hybrid shuffle, mailbox delivery, and
client-side decryption.

Run with::

    python examples/quickstart.py [--curve]

The default uses the small modular test group so the example finishes in a
fraction of a second; ``--curve`` switches to the real edwards25519 group.
"""

import argparse
import time

from repro import Deployment, DeploymentConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--curve",
        action="store_true",
        help="use the real edwards25519 group instead of the fast test group",
    )
    args = parser.parse_args()

    config = DeploymentConfig(
        num_servers=4,
        num_users=8,
        num_chains=3,
        chain_length=2,
        seed=2024,
        group_kind="ed25519" if args.curve else "modp",
    )
    print(f"Creating deployment: {config.num_servers} servers, "
          f"{config.resolved_num_chains()} chains of length {config.resolved_chain_length()}, "
          f"{config.num_users} users ({config.group_kind} group)")
    started = time.perf_counter()
    deployment = Deployment.create(config)
    print(f"  ... chains formed and key ceremonies completed in "
          f"{time.perf_counter() - started:.2f}s")
    print(f"  each user sends to ell = {deployment.ell()} chains per round")
    for topology in deployment.topologies:
        print(f"  chain {topology.chain_id}: {' -> '.join(topology.servers)}")

    alice = deployment.users[0].name
    bob = deployment.users[1].name
    deployment.start_conversation(alice, bob)
    print(f"\n{alice} and {bob} agreed (out of band) to start talking; their "
          f"intersection chain is {deployment.user(alice).conversation_chain(deployment.num_chains)}")

    print("\n--- round 1 ---")
    report = deployment.run_round(
        payloads={alice: b"hey bob, meet at the crossroads", bob: b"on my way"}
    )
    for name in (alice, bob):
        for message in report.delivered[name]:
            if message.kind == "conversation":
                print(f"  {name} received from {message.partner_name}: {message.content.decode()}")
    print(f"  every user received exactly {deployment.ell()} messages: "
          f"{sorted(set(report.mailbox_counts.values())) == [deployment.ell()]}")

    print("\n--- round 2 (idle users are indistinguishable) ---")
    report = deployment.run_round(payloads={alice: b"same time tomorrow?", bob: b"yes"})
    idle_user = deployment.users[5].name
    kinds = sorted({message.kind for message in report.delivered[idle_user]})
    print(f"  idle user {idle_user} still sends/receives {deployment.ell()} messages "
          f"(kinds seen by her: {kinds})")
    print(f"  {bob} received: {report.conversation_payloads(bob)}")
    print("\nDone.")


if __name__ == "__main__":
    main()
