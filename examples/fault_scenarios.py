#!/usr/bin/env python3
"""The fault-injection scenario engine: detect, blame, evict, re-form, resume.

`examples/active_attack.py` shows single-round detection; this example runs
the full multi-round recovery story the paper assumes after a blame verdict
(§6.4), plus a network-layer fault no server or user caused:

1. ``tamper-and-recover`` — a server corrupts a ciphertext at round 2; the
   blame protocol convicts it, the coordinator evicts it and re-forms the
   chain from the remaining pool, and the conversation riding that chain
   resumes in round 3.
2. ``misauthenticating-user`` — §8.2's blame experiment: the user is
   convicted by the walk-back, her submission removed, the round delivers.
3. ``flaky-uplink`` — one user's submissions are lost on the wire for one
   round; everyone else is untouched.

Every canned scenario lives in ``repro.faults.scenarios.CANNED_SCENARIOS``
and runs bit-identically under any execution backend and scheduler.

Run with::

    python examples/fault_scenarios.py
"""

from repro import Deployment, DeploymentConfig
from repro.faults import ScenarioRunner
from repro.faults.scenarios import (
    flaky_uplink,
    misauthenticating_user,
    tamper_and_recover,
)


def fresh_deployment(seed: int, backend: str = "serial") -> Deployment:
    return Deployment.create(
        DeploymentConfig(
            num_servers=4,
            num_users=6,
            num_chains=3,
            chain_length=3,
            seed=seed,
            group_kind="modp",
            execution_backend=backend,
        )
    )


def scenario_tamper_and_recover() -> None:
    print("=== Scenario 1: tamper at round 2 → blame → evict → re-form → resume ===")
    deployment = fresh_deployment(seed=201)
    report = ScenarioRunner(deployment, tamper_and_recover(), staggered=True).run()
    fault_round = report.outcome_for(2)
    print(f"  round 2 chain 0: {fault_round.statuses[0]}")
    print(f"  verdict:        {fault_round.verdicts[0].summary()}")
    for action in report.recoveries:
        print(
            f"  recovery:       evicted {action.evicted}, chain {action.chain_id} "
            f"re-formed as {action.new_servers}"
        )
    for round_number in (3, 4):
        outcome = report.outcome_for(round_number)
        print(
            f"  round {round_number}: all chains delivered = {outcome.all_delivered}, "
            f"{outcome.delivered_messages} messages"
        )
    deployment.close()
    print()


def scenario_malicious_user() -> None:
    print("=== Scenario 2: misauthenticating user convicted by the walk-back ===")
    deployment = fresh_deployment(seed=202)
    report = ScenarioRunner(deployment, misauthenticating_user()).run()
    outcome = report.outcome_for(2)
    print(f"  convicted users: {report.convicted_users()}")
    print(f"  round still delivered after removing her: {outcome.all_delivered}")
    print(f"  servers evicted: {report.evicted_servers or 'none'}")
    deployment.close()
    print()


def scenario_flaky_uplink() -> None:
    print("=== Scenario 3: a user's uploads are lost on the wire for one round ===")
    deployment = fresh_deployment(seed=203)
    report = ScenarioRunner(deployment, flaky_uplink(user_name="user-0")).run()
    for round_number in (1, 2, 3):
        counts = report.outcome_for(round_number).report.mailbox_counts
        print(f"  round {round_number}: user-0 received {counts['user-0']} messages")
    print("  (round 2's uploads were dropped by the faulty transport; "
          "the loss is round-scoped)")
    deployment.close()


def main() -> None:
    scenario_tamper_and_recover()
    scenario_malicious_user()
    scenario_flaky_uplink()
    print("\nAll faults detected, attributed, and survived.")


if __name__ == "__main__":
    main()
