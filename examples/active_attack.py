#!/usr/bin/env python3
"""Active attacks against XRD — and how the aggregate hybrid shuffle stops them.

The example demonstrates the three adversarial behaviours §6 of the paper is
designed to defeat:

1. a malicious first server silently tampering with a ciphertext
   (caught by the downstream honest server; the blame protocol convicts it),
2. a malicious server trying to be cleverer — changing Diffie-Hellman keys
   while preserving the aggregate so the batch proof still verifies
   (still caught, via the per-message DLEQs of the blame protocol), and
3. a malicious *user* submitting a ciphertext that fails authentication at
   the last server, trying to trigger expensive blame work
   (the blame protocol convicts her, removes her submission, and the round
   completes for everyone else).

Run with::

    python examples/active_attack.py
"""

from repro import Deployment, DeploymentConfig
from repro.coordinator.adversary import (
    MODE_PRESERVE_AGGREGATE,
    MODE_TAMPER_CIPHERTEXT,
    forge_misauthenticated_submission,
    install_tampering_server,
)


def fresh_deployment(seed: int) -> Deployment:
    return Deployment.create(
        DeploymentConfig(
            num_servers=4, num_users=6, num_chains=3, chain_length=3, seed=seed, group_kind="modp"
        )
    )


def scenario_tampering_server() -> None:
    print("=== Scenario 1: first server tampers with a ciphertext ===")
    deployment = fresh_deployment(seed=101)
    guilty = deployment.chain(0).members[0].server_name
    install_tampering_server(deployment, chain_id=0, position=0, mode=MODE_TAMPER_CIPHERTEXT)
    report = deployment.run_round()
    result = report.chain_results[0]
    print(f"  chain 0 status: {result.status}")
    print(f"  blame verdict:  malicious servers = {result.blame_verdict.malicious_servers} "
          f"(the tamperer was {guilty})")
    print(f"  messages released by the tampered chain: {len(result.mailbox_messages)} "
          "(nothing observable leaks)")
    print(f"  other chains delivered normally: "
          f"{all(r.delivered for cid, r in report.chain_results.items() if cid != 0)}\n")


def scenario_aggregate_preserving() -> None:
    print("=== Scenario 2: tampering that preserves the aggregate proof ===")
    deployment = fresh_deployment(seed=102)
    install_tampering_server(deployment, chain_id=0, position=0, mode=MODE_PRESERVE_AGGREGATE)
    report = deployment.run_round()
    result = report.chain_results[0]
    print(f"  chain 0 status: {result.status}")
    print(f"  blame verdict:  malicious servers = {result.blame_verdict.malicious_servers}, "
          f"malicious users = {result.blame_verdict.malicious_users} (no honest user is framed)\n")


def scenario_malicious_user() -> None:
    print("=== Scenario 3: malicious user sends a misauthenticated ciphertext ===")
    deployment = fresh_deployment(seed=103)
    alice, bob = deployment.users[0].name, deployment.users[1].name
    deployment.start_conversation(alice, bob)
    views = deployment.chain_keys_view(1)
    bad = forge_misauthenticated_submission(deployment.group, views[0], 1, sender_name="mallory")
    report = deployment.run_round(
        payloads={alice: b"did you see mallory?", bob: b"who?"}, extra_submissions=[bad]
    )
    print(f"  users removed from the round by the blame protocol: {report.rejected_senders}")
    print(f"  chain 0 still delivered after removing her: {report.chain_results[0].delivered}")
    print(f"  {bob} still received: {report.conversation_payloads(bob)}")
    print(f"  {alice} still received: {report.conversation_payloads(alice)}")


def main() -> None:
    scenario_tampering_server()
    scenario_aggregate_preserving()
    scenario_malicious_user()
    print("\nAll three active attacks were detected and attributed correctly.")


if __name__ == "__main__":
    main()
