#!/usr/bin/env python3
"""User churn and cover messages (§5.3.3 of the paper).

Alice and Bob are mid-conversation when Alice abruptly goes offline.  Because
every user submits a set of *cover messages* for the next round along with
her real messages, the servers can play Alice's covers in her absence:

* observable mailbox counts stay uniform, so the adversary learns nothing;
* one of the covers is an encrypted "I am offline" notice that only Bob can
  read, so from the next round Bob reverts to loopback messages — again
  leaving nothing observable behind.

The example also re-runs the same scenario with cover messages disabled to
show the leak they prevent, and finishes with the paper's server-churn
availability numbers (Figure 8).

Run with::

    python examples/churn_and_cover.py
"""

from repro import Deployment, DeploymentConfig
from repro.analysis import figures, render_figure


def run_with_covers(use_cover_messages: bool) -> None:
    label = "with" if use_cover_messages else "WITHOUT"
    print(f"=== Conversation interrupted by churn, {label} cover messages ===")
    deployment = Deployment.create(
        DeploymentConfig(
            num_servers=4,
            num_users=6,
            num_chains=3,
            chain_length=2,
            seed=7,
            group_kind="modp",
            use_cover_messages=use_cover_messages,
        )
    )
    alice, bob = deployment.users[0].name, deployment.users[1].name
    deployment.start_conversation(alice, bob)

    deployment.run_round(payloads={alice: b"everything fine?", bob: b"yes, you?"})
    print("  round 1: conversation in progress")

    report = deployment.run_round(payloads={bob: b"hello? still there?"}, offline_users=[alice])
    counts = {name: count for name, count in report.mailbox_counts.items() if name != alice}
    uniform = len(set(counts.values())) == 1
    print(f"  round 2: {alice} went offline; covers played: {report.used_cover_for}")
    print(f"           online users' mailbox counts uniform: {uniform} ({sorted(set(counts.values()))})")
    notices = [m for m in report.delivered[bob] if m.kind == "offline-notice"]
    print(f"           {bob} received an offline notice: {len(notices) == 1}")

    follow_up = deployment.run_round()
    print(f"  round 3: {bob} reverted to loopbacks; conversation payloads delivered: "
          f"{follow_up.conversation_payloads(bob)}")
    counts = set(follow_up.mailbox_counts.values())
    print(f"           mailbox counts uniform again: {counts == {deployment.ell()}}\n")


def server_churn_summary() -> None:
    print("=== Server churn availability (Figure 8) ===")
    figure = figures.figure8(churn_rates=(0.0, 0.01, 0.02, 0.04), server_counts=(100, 1000))
    print(render_figure(figure))
    print("\n(At Tor-like 1% server churn, roughly a quarter of conversations need "
          "to resend; this is the availability cost the paper discusses in §8.3.)")


def main() -> None:
    run_with_covers(use_cover_messages=True)
    run_with_covers(use_cover_messages=False)
    server_churn_summary()


if __name__ == "__main__":
    main()
