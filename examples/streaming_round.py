#!/usr/bin/env python3
"""Drive a large round through the streaming population pipeline (DESIGN.md §9).

The monolithic population path builds every submission of a round in one
O(users) pass; the streaming pipeline slices the build into bounded chunks —
optionally fanned out to a fork-based worker pool — and uploads, delivers,
and fetches per chunk, so peak memory is O(chunk) no matter how large the
population grows.  The round's observable outputs are bit-identical either
way (the engine parity suite proves it); only the memory/latency profile
changes.

This example runs one such round end to end and logs a progress line per
chunk as the engine streams through the build and fetch stages, then prints
the round's phase timings and, on Linux, the process's peak RSS.

Run with::

    python examples/streaming_round.py                 # 20k users, 2k chunks
    python examples/streaming_round.py --users 100000 --chunk-size 10000 --workers 2
"""

import argparse
import resource
import sys
import time

from repro import Deployment, DeploymentConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=20_000)
    parser.add_argument("--chunk-size", type=int, default=2_000)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="forked build workers (0 = build chunks in process)",
    )
    args = parser.parse_args()

    num_chunks = -(-args.users // args.chunk_size)
    print(
        f"Creating deployment: {args.users:,} users, 4 chains, "
        f"chunk size {args.chunk_size:,} ({num_chunks} chunks), "
        f"{args.workers} build workers"
    )
    deployment = Deployment.create(
        DeploymentConfig(
            num_servers=4,
            num_users=args.users,
            num_chains=4,
            chain_length=2,
            seed=7,
            group_kind="modp",
            use_cover_messages=False,
            population="batched",
            population_chunk_size=args.chunk_size,
            population_build_workers=args.workers,
        )
    )

    started = time.perf_counter()

    def progress(phase: str, chunk_index: int, num_users: int) -> None:
        elapsed = time.perf_counter() - started
        print(
            f"  [{elapsed:7.1f}s] {phase:<5} chunk {chunk_index + 1:>3}/{num_chunks}"
            f"  ({num_users:,} users)"
        )

    deployment.population.progress = progress

    print("Running one round...")
    report = deployment.run_round()
    elapsed = time.perf_counter() - started

    assert report.all_chains_delivered()
    print(f"\nRound {report.round_number} delivered on all chains in {elapsed:.1f}s")
    print(f"  submissions mixed : {report.total_submissions:,}")
    for stage, seconds in sorted(report.stage_seconds.items()):
        print(f"  {stage:<18}: {seconds:.1f}s")
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak = rss if sys.platform == "darwin" else rss * 1024
    print(f"  peak RSS          : {peak / 1e6:,.0f} MB")
    deployment.close()


if __name__ == "__main__":
    main()
