#!/usr/bin/env python3
"""A real distributed XRD round: one OS process per role, over TCP.

Everything else in ``examples/`` runs inside one interpreter; this example
launches the process-per-role runtime (DESIGN.md §10): two mix-server
processes and a mailbox process bind localhost TCP listeners, then a
coordinator process drives the tamper/blame/recovery acceptance scenario
across them — submissions, chain outcomes, and mailbox fetches all cross
real sockets as length-prefixed frames.

The punchline is parity: the distributed run's per-round fingerprints and
scenario digest are compared against an ordinary in-process run of the
same plan, and they match bit for bit.  The sockets are unobservable.

Run with::

    python examples/distributed_round.py [--report report.json]

which is exactly equivalent to the launch CLI's all-in-one mode::

    python -m repro.runner --role all --config config.json --spec plan.json
"""

import argparse
import json
import sys

from repro import Deployment, DeploymentConfig
from repro.faults import ScenarioRunner
from repro.faults.scenarios import tamper_and_recover
from repro.registry import ExecutionBackendKind, PopulationKind, TransportKind
from repro.runner import protocol
from repro.runner.harness import run_localhost


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", default=None, help="also write the scenario summary JSON here"
    )
    args = parser.parse_args()

    # The typed config surface: enum knobs, not strings.
    config = DeploymentConfig(
        num_servers=4,
        num_users=6,
        num_chains=3,
        chain_length=2,
        seed=42,
        group_kind="modp",
        execution_backend=ExecutionBackendKind.SERIAL,
        transport=TransportKind.INPROC,  # what each replica uses internally
        population=PopulationKind.OBJECT,
        max_workers=2,
    )
    plan = tamper_and_recover()  # tamper at round 2 → blame → evict → re-form

    print("=== In-process reference run ===")
    deployment = Deployment.create(config)
    try:
        reference = protocol.scenario_summary(ScenarioRunner(deployment, plan).run())
    finally:
        deployment.close()
    for entry in reference["rounds"]:
        print(f"  round {entry['round']}: {entry['statuses']}  "
              f"fingerprint {entry['fingerprint'][:16]}…")

    print("=== Distributed run: coordinator + 2 mix roles + 1 mailbox role ===")
    summary = run_localhost(config, plan, num_mix=2, keep_report=args.report)
    for entry in summary["rounds"]:
        print(f"  round {entry['round']}: {entry['statuses']}  "
              f"fingerprint {entry['fingerprint'][:16]}…")
    for action in summary["recoveries"]:
        print(f"  recovery after round {action['round']}: chain {action['chain']} "
              f"evicted {action['evicted']} → re-formed with {action['new_servers']}")

    if summary == reference:
        print(f"PARITY: scenario digest {summary['canonical'][:16]}… matches "
              "the in-process reference bit for bit")
        return 0
    print("MISMATCH between the distributed run and the in-process reference:")
    print(json.dumps({"reference": reference, "distributed": summary}, indent=2))
    return 1


if __name__ == "__main__":
    sys.exit(main())
