#!/usr/bin/env python3
"""Scaling study: regenerate the paper's evaluation headlines from the models.

Prints the data behind every figure of §8 (user costs, end-to-end latency
versus users / servers / f, blame-protocol overhead, and churn availability)
using the calibrated cost models, and finishes with the abstract's headline
comparison (XRD vs Atom, Pung, Stadium at 2M users on 100 servers).

Run with::

    python examples/scaling_study.py           # paper-calibrated cost model
    python examples/scaling_study.py --measured  # also show this machine's primitives
"""

import argparse

from repro.analysis import figures, render_figure, render_table
from repro.simulation.costmodel import CostModel
from repro.simulation.microbench import measure_primitives


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--measured",
        action="store_true",
        help="also microbenchmark this machine's pure-Python primitives",
    )
    args = parser.parse_args()

    for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
        print(render_figure(figures.ALL_FIGURES[name]()))
        print()

    table = figures.user_cost_table()
    rows = [
        [row["servers"], row["ell"], row["chain_length"], row["upload_kb"], row["kbps_1min_rounds"]]
        for row in table["rows"]
    ]
    print(table["title"])
    print(render_table(["servers", "ell", "k", "upload KB/round", "Kbps (1-min rounds)"], rows))
    print()

    headline = figures.headline_comparison()
    print(headline["title"])
    print(f"  XRD     {headline['xrd_latency']:8.1f} s   (paper: 251 s)")
    print(f"  Atom    {headline['atom_latency']:8.1f} s   ({headline['atom_speedup']:.1f}x slower; paper: 12x)")
    print(f"  Pung    {headline['pung_latency']:8.1f} s   ({headline['pung_speedup']:.1f}x slower; paper: 3.7x)")
    print(f"  Stadium {headline['stadium_latency']:8.1f} s   (XRD {headline['stadium_slowdown']:.1f}x slower; paper: ~2-3x)")

    if args.measured:
        print("\nMicrobenchmarks of this machine's pure-Python primitives "
              "(why absolute throughput cannot match the Go prototype):")
        timings = measure_primitives(iterations=10)
        paper = CostModel.paper_testbed()
        print(f"  scalar multiplication: {timings.scalar_mult * 1e3:7.3f} ms "
              f"(paper testbed ~{paper.scalar_mult * 1e3:.3f} ms)")
        print(f"  NIZK verification:     {timings.nizk_verify * 1e3:7.3f} ms")
        print(f"  AEAD (fixed cost):     {timings.aead_fixed * 1e3:7.3f} ms")


if __name__ == "__main__":
    main()
