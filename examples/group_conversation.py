#!/usr/bin/env python3
"""Group conversations over XRD (the §9 extension).

The paper notes that XRD can already support small group chats whenever the
pairs of a group intersect at *different* chains: each member simply runs an
ordinary one-to-one conversation with every other member on the corresponding
intersection chain.  This example finds three users whose pairwise
intersection chains are distinct and relays a three-way exchange through two
rounds of pairwise messages, using nothing but the standard public API.

It also demonstrates the limitation the paper points out: when two of a
user's partners intersect her on the *same* chain, the current protocol
cannot carry both conversations simultaneously — the example detects and
reports that case instead of silently mis-delivering.

Run with::

    python examples/group_conversation.py
"""

from itertools import combinations

from repro import Deployment, DeploymentConfig
from repro.client.chain_selection import intersection_chain


def find_group_of_three(deployment):
    """Find three users whose pairwise intersection chains are all distinct."""
    num_chains = deployment.num_chains
    for candidates in combinations(deployment.users, 3):
        chains = {
            pair: intersection_chain(pair[0].public_bytes, pair[1].public_bytes, num_chains)
            for pair in combinations(candidates, 2)
        }
        if len(set(chains.values())) == len(chains):
            return candidates, chains
    return None, None


def main() -> None:
    deployment = Deployment.create(
        DeploymentConfig(
            num_servers=6, num_users=12, num_chains=6, chain_length=2, seed=99, group_kind="modp"
        )
    )
    members, chains = find_group_of_three(deployment)
    if members is None:
        print("No suitable trio in this deployment (all pairs collide on a chain); "
              "the paper notes this case needs the future-work generalisation.")
        return

    names = [member.name for member in members]
    print(f"Group chat members: {', '.join(names)}")
    for (first, second), chain in chains.items():
        print(f"  {first.name} <-> {second.name} intersect on chain {chain}")

    # Round 1: the first member messages the second; round 2: the second
    # relays to the third (a relay topology keeps each user within the
    # one-conversation-per-round constraint of the current protocol).
    a, b, c = members
    deployment.start_conversation(a.name, b.name)
    report = deployment.run_round(payloads={a.name: b"group: protest moved to 6pm", b.name: b"ack"})
    received_by_b = report.conversation_payloads(b.name)
    print(f"\nround 1: {b.name} received {received_by_b}")

    deployment.end_conversation(a.name, b.name)
    deployment.start_conversation(b.name, c.name)
    relay = received_by_b[0] if received_by_b else b""
    report = deployment.run_round(payloads={b.name: b"relay: " + relay, c.name: b"ack"})
    print(f"round 2: {c.name} received {report.conversation_payloads(c.name)}")

    print("\nEvery round, every member still sent exactly "
          f"{deployment.ell()} fixed-size messages — group membership is not observable.")


if __name__ == "__main__":
    main()
